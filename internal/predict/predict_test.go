package predict

import (
	"testing"
	"testing/quick"
)

func TestGshareLearnsAlwaysTaken(t *testing.T) {
	g := NewGshare(10)
	pc := uint64(0x1000)
	for i := 0; i < 100; i++ {
		g.Update(pc, true)
	}
	if !g.Predict(pc) {
		t.Error("did not learn always-taken")
	}
	if g.Lookups != 100 {
		t.Errorf("lookups = %d", g.Lookups)
	}
}

func TestGshareLearnsAlternatingWithHistory(t *testing.T) {
	// With global history, a strict alternation is learnable: after warmup
	// the mispredict rate must drop well below 50%.
	g := NewGshare(10)
	pc := uint64(0x2000)
	for i := 0; i < 500; i++ {
		g.Update(pc, i%2 == 0)
	}
	before := g.Mispredicts
	for i := 500; i < 1500; i++ {
		g.Update(pc, i%2 == 0)
	}
	late := g.Mispredicts - before
	if late > 100 {
		t.Errorf("alternating pattern still mispredicts %d/1000 after warmup", late)
	}
}

func TestGshareCounterSaturation(t *testing.T) {
	g := NewGshare(4)
	f := func(pc uint64, outcomes []bool) bool {
		for _, o := range outcomes {
			g.Update(pc, o)
		}
		for _, c := range g.table {
			if c > 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPathPredictorLearnsStableTarget(t *testing.T) {
	p := NewPathPredictor(10, 4)
	pc := uint64(0x3000)
	miss := 0
	for i := 0; i < 200; i++ {
		pred := p.Predict(pc)
		if !p.Resolve(pc, pred, 2) {
			miss++
		}
		p.Speculate(pc)
	}
	if p.Predict(pc) != 2 {
		t.Errorf("did not converge to target 2, predicts %d", p.Predict(pc))
	}
	if miss > 10 {
		t.Errorf("%d misses on a constant target", miss)
	}
}

func TestPathPredictorHysteresis(t *testing.T) {
	p := NewPathPredictor(10, 4)
	pc := uint64(0x4000)
	for i := 0; i < 50; i++ {
		p.Resolve(pc, p.Predict(pc), 1)
	}
	// One glitch must not flip the stored target.
	p.Resolve(pc, p.Predict(pc), 3)
	if p.Predict(pc) != 1 {
		t.Error("single outlier flipped a saturated entry")
	}
}

func TestPathPredictorOutOfRangeTargetAlwaysMisses(t *testing.T) {
	p := NewPathPredictor(10, 4)
	pc := uint64(0x5000)
	for i := 0; i < 20; i++ {
		if p.Resolve(pc, p.Predict(pc), 6) {
			t.Fatal("target 6 counted as correct with 4 hardware slots")
		}
	}
	if p.Predict(pc) >= 4 {
		t.Error("prediction out of hardware range")
	}
}

func TestPathPredictorNegativeActual(t *testing.T) {
	p := NewPathPredictor(8, 4)
	if p.Resolve(0x10, 0, -1) {
		t.Error("actual=-1 treated as correct")
	}
}

func TestPathPredictorAccuracy(t *testing.T) {
	p := NewPathPredictor(8, 4)
	if p.Accuracy() != 1 {
		t.Error("accuracy without lookups should be 1")
	}
	p.Resolve(0x10, 0, 1)
	p.Resolve(0x10, p.Predict(0x10), 1)
	if a := p.Accuracy(); a < 0 || a > 1 {
		t.Errorf("accuracy %v out of range", a)
	}
}

func TestPathHistoryDistinguishesPaths(t *testing.T) {
	// The same task reached along different paths should use different
	// entries: train path A->X to target 0 and B->X to target 1.
	p := NewPathPredictor(12, 4)
	a, b, x := uint64(0x100), uint64(0x200), uint64(0x300)
	for i := 0; i < 100; i++ {
		p.RewindTo(0)
		p.Speculate(a)
		p.Resolve(x, p.Predict(x), 0)
		p.RewindTo(0)
		p.Speculate(b)
		p.Resolve(x, p.Predict(x), 1)
	}
	p.RewindTo(0)
	p.Speculate(a)
	ta := p.Predict(x)
	p.RewindTo(0)
	p.Speculate(b)
	tb := p.Predict(x)
	if ta != 0 || tb != 1 {
		t.Errorf("path-sensitivity failed: after A predicts %d (want 0), after B predicts %d (want 1)", ta, tb)
	}
}

func TestRASLIFO(t *testing.T) {
	r := NewRAS(4)
	for i := uint64(1); i <= 3; i++ {
		r.Push(i)
	}
	for want := uint64(3); want >= 1; want-- {
		got, ok := r.Pop()
		if !ok || got != want {
			t.Fatalf("Pop = %d,%v want %d", got, ok, want)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Error("Pop on empty succeeded")
	}
}

func TestRASOverflowDropsOldest(t *testing.T) {
	r := NewRAS(2)
	r.Push(1)
	r.Push(2)
	r.Push(3) // displaces 1
	if r.Overflows != 1 {
		t.Errorf("overflows = %d", r.Overflows)
	}
	if v, _ := r.Pop(); v != 3 {
		t.Errorf("top = %d", v)
	}
	if v, _ := r.Pop(); v != 2 {
		t.Errorf("second = %d", v)
	}
	if _, ok := r.Pop(); ok {
		t.Error("oldest entry survived overflow")
	}
}

func TestRASSnapshotRestore(t *testing.T) {
	r := NewRAS(8)
	r.Push(1)
	r.Push(2)
	snap := r.Snapshot()
	r.Push(3)
	r.Pop()
	r.Pop()
	r.Restore(snap)
	if r.Depth() != 2 {
		t.Fatalf("depth = %d after restore", r.Depth())
	}
	if v, _ := r.Pop(); v != 2 {
		t.Error("restore lost order")
	}
}
