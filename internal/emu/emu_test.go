package emu

import (
	"errors"
	"testing"
	"testing/quick"

	"multiscalar/internal/ir"
)

// sumProg computes sum of 0..9 into memory word at DataBase.
func sumProg(t *testing.T) *ir.Program {
	t.Helper()
	b := ir.NewBuilder("sum")
	out := b.Zeros(1)
	f := b.Func("main")
	f.Block("entry").MovI(ir.R(3), 0).MovI(ir.R(4), 0).MovI(ir.R(8), int64(out)).Goto("head")
	f.Block("head").SltI(ir.R(5), ir.R(3), 10).Br(ir.R(5), "body", "exit")
	f.Block("body").Add(ir.R(4), ir.R(4), ir.R(3)).AddI(ir.R(3), ir.R(3), 1).Goto("head")
	f.Block("exit").Store(ir.R(4), ir.R(8), 0).Halt()
	f.End()
	return b.Build()
}

func TestRunSumLoop(t *testing.T) {
	m := New(sumProg(t))
	if err := m.Run(10000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := m.Mem.Load(ir.DataBase); got != 45 {
		t.Errorf("sum = %d, want 45", got)
	}
	if m.Regs[ir.R(3)] != 10 {
		t.Errorf("induction variable = %d, want 10", m.Regs[ir.R(3)])
	}
}

func TestInstructionLimit(t *testing.T) {
	b := ir.NewBuilder("inf")
	f := b.Func("main")
	f.Block("spin").Nop().Goto("spin")
	f.End()
	m := New(b.Build())
	if err := m.Run(100); !errors.Is(err, ErrLimit) {
		t.Fatalf("err = %v, want ErrLimit", err)
	}
}

func TestCallAndReturn(t *testing.T) {
	b := ir.NewBuilder("call")
	sq := b.DeclareFn("square")
	f := b.Func("main")
	f.Block("entry").MovI(ir.RegArg0, 7).Call(sq, "after")
	f.Block("after").Mov(ir.R(10), ir.RegRV).Halt()
	f.End()
	g := b.Func("square")
	g.Block("entry").Mul(ir.RegRV, ir.RegArg0, ir.RegArg0).Ret()
	g.End()
	m := New(b.Build())
	if err := m.Run(1000); err != nil {
		t.Fatal(err)
	}
	if m.Regs[ir.R(10)] != 49 {
		t.Errorf("square(7) = %d", m.Regs[ir.R(10)])
	}
	if m.Depth() != 0 {
		t.Errorf("stack depth = %d after completion", m.Depth())
	}
}

func TestRecursionViaExplicitSpills(t *testing.T) {
	// fact(n): spills arg to the stack around the recursive call.
	b := ir.NewBuilder("fact")
	fact := b.DeclareFn("fact")
	f := b.Func("main")
	f.Block("entry").MovI(ir.RegArg0, 6).Call(fact, "after")
	f.Block("after").Mov(ir.R(10), ir.RegRV).Halt()
	f.End()
	g := b.Func("fact")
	g.Block("entry").SltI(ir.R(6), ir.RegArg0, 2).Br(ir.R(6), "base", "rec")
	g.Block("base").MovI(ir.RegRV, 1).Ret()
	g.Block("rec").
		AddI(ir.RegSP, ir.RegSP, -8).
		Store(ir.RegArg0, ir.RegSP, 0).
		AddI(ir.RegArg0, ir.RegArg0, -1).
		Call(fact, "unwind")
	g.Block("unwind").
		Load(ir.RegArg0, ir.RegSP, 0).
		AddI(ir.RegSP, ir.RegSP, 8).
		Mul(ir.RegRV, ir.RegArg0, ir.RegRV).
		Ret()
	g.End()
	m := New(b.Build())
	if err := m.Run(100000); err != nil {
		t.Fatal(err)
	}
	if m.Regs[ir.R(10)] != 720 {
		t.Errorf("fact(6) = %d, want 720", m.Regs[ir.R(10)])
	}
}

func TestProfileCounts(t *testing.T) {
	m := New(sumProg(t))
	prof := m.EnableProfile()
	if err := m.Run(10000); err != nil {
		t.Fatal(err)
	}
	if prof.BlockFreq[0][0] != 1 {
		t.Errorf("entry freq = %d", prof.BlockFreq[0][0])
	}
	if prof.BlockFreq[0][1] != 11 { // head: 10 iterations + exit test
		t.Errorf("head freq = %d, want 11", prof.BlockFreq[0][1])
	}
	if prof.BlockFreq[0][2] != 10 {
		t.Errorf("body freq = %d, want 10", prof.BlockFreq[0][2])
	}
	e := prof.EdgeFreq[EdgeKey{Fn: 0, From: 1, To: 2}]
	if e != 10 {
		t.Errorf("head->body edge freq = %d, want 10", e)
	}
	if prof.DynInstrs != m.Count {
		t.Errorf("DynInstrs = %d, Count = %d", prof.DynInstrs, m.Count)
	}
}

func TestProfileInclusiveInstrs(t *testing.T) {
	b := ir.NewBuilder("incl")
	leaf := b.DeclareFn("leaf")
	mid := b.DeclareFn("mid")
	f := b.Func("main")
	f.Block("entry").Call(mid, "after")
	f.Block("after").Halt()
	f.End()
	g := b.Func("mid")
	g.Block("entry").Nop().Call(leaf, "back")
	g.Block("back").Ret()
	g.End()
	h := b.Func("leaf")
	h.Block("entry").Nop().Nop().Ret()
	h.End()
	m := New(b.Build())
	prof := m.EnableProfile()
	if err := m.Run(1000); err != nil {
		t.Fatal(err)
	}
	// leaf: 2 nops + ret = 3; mid inclusive: nop + call + leaf(3) + ret = 6.
	if got := prof.AvgInclInstrs(leaf); got != 3 {
		t.Errorf("leaf inclusive = %v, want 3", got)
	}
	if got := prof.AvgInclInstrs(mid); got != 6 {
		t.Errorf("mid inclusive = %v, want 6", got)
	}
}

func TestMemorySparseAndAligned(t *testing.T) {
	m := NewMemory()
	m.Store(0x1000, 7)
	if m.Load(0x1003) != 7 { // same word, aligned down
		t.Error("unaligned load did not align down")
	}
	if m.Load(0x1008) != 0 {
		t.Error("untouched memory not zero")
	}
}

func TestChecksumOrderInsensitiveToWriteOrder(t *testing.T) {
	a, b := NewMemory(), NewMemory()
	a.Store(8, 1)
	a.Store(16, 2)
	b.Store(16, 2)
	b.Store(8, 1)
	if a.Checksum() != b.Checksum() {
		t.Error("checksum depends on write order")
	}
	b.Store(8, 3)
	if a.Checksum() == b.Checksum() {
		t.Error("checksum insensitive to value change")
	}
}

func TestChecksumIgnoresZeroWrites(t *testing.T) {
	a, b := NewMemory(), NewMemory()
	a.Store(64, 0)
	if a.Checksum() != b.Checksum() {
		t.Error("explicit zero store changed checksum")
	}
}

func TestExecArithmetic(t *testing.T) {
	var regs [ir.NumRegs]uint64
	load := func(uint64) uint64 { return 0 }
	store := func(uint64, uint64) {}
	regs[ir.R(4)] = ^uint64(5)
	regs[ir.R(5)] = 4
	cases := []struct {
		op   ir.Opcode
		want int64
	}{
		{ir.OpAdd, -2}, {ir.OpSub, -10}, {ir.OpMul, -24}, {ir.OpDiv, -1},
		{ir.OpRem, -2}, {ir.OpSlt, 1}, {ir.OpSle, 1}, {ir.OpSeq, 0}, {ir.OpSne, 1},
	}
	for _, c := range cases {
		ExecOn(ir.Instr{Op: c.op, Dst: ir.R(6), Src1: ir.R(4), Src2: ir.R(5)}, &regs, load, store)
		if got := int64(regs[ir.R(6)]); got != c.want {
			t.Errorf("%v(-6,4) = %d, want %d", c.op, got, c.want)
		}
	}
}

func TestExecDivByZero(t *testing.T) {
	var regs [ir.NumRegs]uint64
	regs[ir.R(4)] = 10
	ExecOn(ir.Instr{Op: ir.OpDiv, Dst: ir.R(6), Src1: ir.R(4), Src2: ir.R(5)}, &regs, nil, nil)
	if regs[ir.R(6)] != 0 {
		t.Error("div by zero != 0")
	}
	ExecOn(ir.Instr{Op: ir.OpRem, Dst: ir.R(6), Src1: ir.R(4), Src2: ir.R(5)}, &regs, nil, nil)
	if regs[ir.R(6)] != 0 {
		t.Error("rem by zero != 0")
	}
}

func TestExecZeroRegisterImmutable(t *testing.T) {
	var regs [ir.NumRegs]uint64
	ExecOn(ir.Instr{Op: ir.OpMovI, Dst: ir.RegZero, Imm: 99}, &regs, nil, nil)
	if regs[ir.RegZero] != 0 {
		t.Error("write to r0 not discarded")
	}
}

func TestExecFloatOps(t *testing.T) {
	var regs [ir.NumRegs]uint64
	regs[ir.F(0)] = ir.F64Bits(3.5)
	regs[ir.F(1)] = ir.F64Bits(2.0)
	check := func(op ir.Opcode, want float64) {
		t.Helper()
		ExecOn(ir.Instr{Op: op, Dst: ir.F(2), Src1: ir.F(0), Src2: ir.F(1)}, &regs, nil, nil)
		if got := ir.F64(regs[ir.F(2)]); got != want {
			t.Errorf("%v(3.5,2.0) = %g, want %g", op, got, want)
		}
	}
	check(ir.OpFAdd, 5.5)
	check(ir.OpFSub, 1.5)
	check(ir.OpFMul, 7.0)
	check(ir.OpFDiv, 1.75)
}

func TestExecFSqrtMatchesNewton(t *testing.T) {
	f := func(x float64) bool {
		if x < 0 || x != x || x > 1e150 {
			return true
		}
		got := fsqrt(x)
		return got*got-x < 1e-9*x+1e-12 && x-got*got < 1e-9*x+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestExecCvt(t *testing.T) {
	var regs [ir.NumRegs]uint64
	regs[ir.R(4)] = ^uint64(2)
	ExecOn(ir.Instr{Op: ir.OpCvtIF, Dst: ir.F(0), Src1: ir.R(4)}, &regs, nil, nil)
	if ir.F64(regs[ir.F(0)]) != -3.0 {
		t.Error("cvtif wrong")
	}
	regs[ir.F(1)] = ir.F64Bits(-2.9)
	ExecOn(ir.Instr{Op: ir.OpCvtFI, Dst: ir.R(5), Src1: ir.F(1)}, &regs, nil, nil)
	if int64(regs[ir.R(5)]) != -2 {
		t.Errorf("cvtfi(-2.9) = %d, want -2 (truncation)", int64(regs[ir.R(5)]))
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		m := New(sumProg(t))
		if err := m.Run(10000); err != nil {
			t.Fatal(err)
		}
		return m.Count, m.Mem.Checksum()
	}
	c1, s1 := run()
	c2, s2 := run()
	if c1 != c2 || s1 != s2 {
		t.Error("emulator is nondeterministic")
	}
}

func TestTraceCallback(t *testing.T) {
	m := New(sumProg(t))
	var blocks []ir.BlockID
	m.Trace = func(fn ir.FnID, blk ir.BlockID) {
		if fn != 0 {
			t.Errorf("unexpected function %d", fn)
		}
		blocks = append(blocks, blk)
	}
	if err := m.Run(10000); err != nil {
		t.Fatal(err)
	}
	// entry, then (head, body) x10, head, exit.
	if len(blocks) != 1+2*10+1+1 {
		t.Fatalf("trace length = %d", len(blocks))
	}
	if blocks[0] != 0 || blocks[len(blocks)-1] != 3 {
		t.Errorf("trace endpoints: %v ... %v", blocks[0], blocks[len(blocks)-1])
	}
}

func TestPCTracking(t *testing.T) {
	m := New(sumProg(t))
	fn, blk := m.PC()
	if fn != 0 || blk != 0 {
		t.Errorf("initial PC = %d/%d", fn, blk)
	}
	if done, err := m.StepBlock(); done || err != nil {
		t.Fatalf("StepBlock: %v %v", done, err)
	}
	if _, blk = m.PC(); blk != 1 {
		t.Errorf("PC after entry = b%d, want b1", blk)
	}
}

func TestMemoryWordsCount(t *testing.T) {
	m := NewMemory()
	if m.Words() != 0 {
		t.Error("fresh memory has words")
	}
	m.Store(0, 5)
	m.Store(8, 0) // zero store does not count
	m.Store(16, 7)
	if got := m.Words(); got != 2 {
		t.Errorf("Words = %d, want 2", got)
	}
}

func TestLoadImage(t *testing.T) {
	b := ir.NewBuilder("img")
	addr := b.Data(11, 22, 33)
	f := b.Func("main")
	f.Block("entry").Halt()
	f.End()
	m := New(b.Build())
	for i, want := range []uint64{11, 22, 33} {
		if got := m.Mem.Load(addr + uint64(i*8)); got != want {
			t.Errorf("image word %d = %d, want %d", i, got, want)
		}
	}
}
