// Package emu is the sequential functional emulator for the IR. It serves
// three purposes in the reproduction:
//
//  1. It produces the dynamic profile (block frequencies, edge frequencies,
//     per-invocation dynamic instruction counts) that the paper's task-size
//     and data-dependence heuristics consume.
//  2. It is the architectural oracle: the cycle-level Multiscalar simulator
//     must leave memory and registers in exactly the state the emulator
//     computes, which the integration tests check.
//  3. It measures the dynamic instruction stream used for per-task metrics
//     (Table 1's #dyn inst and #ct inst columns).
package emu

import (
	"errors"
	"fmt"

	"multiscalar/internal/ir"
)

// ErrLimit is returned by Run when the instruction budget is exhausted
// before the program halts.
var ErrLimit = errors.New("emu: instruction limit exceeded")

// Memory is a sparse word-addressed memory. Addresses are byte addresses;
// accesses are aligned down to 8-byte words. The zero value is usable.
type Memory struct {
	words map[uint64]uint64
}

// NewMemory returns an empty memory.
func NewMemory() *Memory { return &Memory{words: make(map[uint64]uint64)} }

// Load returns the word at the (aligned-down) byte address.
func (m *Memory) Load(addr uint64) uint64 {
	if m.words == nil {
		return 0
	}
	return m.words[addr/ir.WordBytes]
}

// Store writes the word at the (aligned-down) byte address.
func (m *Memory) Store(addr, val uint64) {
	if m.words == nil {
		m.words = make(map[uint64]uint64)
	}
	m.words[addr/ir.WordBytes] = val
}

// LoadImage copies the program's initial data image into memory.
func (m *Memory) LoadImage(p *ir.Program) {
	for i, w := range p.Data {
		m.Store(ir.DataBase+uint64(i)*ir.WordBytes, uint64(w))
	}
}

// Checksum folds every word of memory into a deterministic 64-bit hash
// (address-sensitive), used to compare simulator and emulator end states.
func (m *Memory) Checksum() uint64 {
	var sum uint64 = 14695981039346656037 // FNV offset basis
	// Iterate in address order for determinism.
	var addrs []uint64
	for a := range m.words {
		addrs = append(addrs, a)
	}
	sortUint64(addrs)
	for _, a := range addrs {
		v := m.words[a]
		if v == 0 {
			continue // zero words are indistinguishable from untouched memory
		}
		sum ^= a
		sum *= 1099511628211
		sum ^= v
		sum *= 1099511628211
	}
	return sum
}

// Words returns the number of nonzero words resident in memory.
func (m *Memory) Words() int {
	n := 0
	for _, v := range m.words {
		if v != 0 {
			n++
		}
	}
	return n
}

func sortUint64(s []uint64) {
	// Insertion sort is fine for the sizes we see and avoids importing sort
	// into the hot path; memory images are a few thousand words.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// EdgeKey identifies a dynamic control-flow edge within a function.
type EdgeKey struct {
	Fn       ir.FnID
	From, To ir.BlockID
}

// Profile is the dynamic profile of one program run.
type Profile struct {
	// BlockFreq[fn][block] is the execution count of each basic block.
	BlockFreq [][]uint64
	// EdgeFreq counts taken control-flow edges (calls count the fall edge on
	// return; the call itself is counted in CallFreq).
	EdgeFreq map[EdgeKey]uint64
	// CallFreq[fn] is the number of invocations of each function.
	CallFreq []uint64
	// InclInstrs[fn] is the total dynamic instructions executed inside each
	// function including its callees, summed over invocations.
	InclInstrs []uint64
	// DynInstrs is the total dynamic instruction count of the run.
	DynInstrs uint64
}

// AvgInclInstrs returns the average dynamic instructions per invocation of
// fn, callees included; returns 0 when the function never ran.
func (p *Profile) AvgInclInstrs(fn ir.FnID) float64 {
	if p == nil || int(fn) >= len(p.CallFreq) || p.CallFreq[fn] == 0 {
		return 0
	}
	return float64(p.InclInstrs[fn]) / float64(p.CallFreq[fn])
}

// Freq returns the execution count of a block, 0 when no profile.
func (p *Profile) Freq(fn ir.FnID, b ir.BlockID) uint64 {
	if p == nil || int(fn) >= len(p.BlockFreq) || int(b) >= len(p.BlockFreq[fn]) {
		return 0
	}
	return p.BlockFreq[fn][b]
}

// Machine executes a program sequentially.
type Machine struct {
	Prog *ir.Program
	Regs [ir.NumRegs]uint64
	Mem  *Memory

	fn    ir.FnID
	blk   ir.BlockID
	stack []retAddr

	// Count is the number of dynamic instructions executed so far
	// (terminators included).
	Count uint64

	prof       *Profile
	inclEnter  []uint64 // Count at entry per active frame, parallel to stack
	curEntered uint64   // Count at entry of the current frame

	// Trace, when non-nil, receives every executed block in order. Used by
	// tests and by Table 1's dynamic per-task measurements.
	Trace func(fn ir.FnID, blk ir.BlockID)
}

type retAddr struct {
	fn  ir.FnID
	blk ir.BlockID
}

// New returns a machine ready to run the program from its main function,
// with the data image loaded and the stack pointer initialized.
func New(p *ir.Program) *Machine {
	if !p.LaidOut() {
		p.Layout()
	}
	m := &Machine{Prog: p, Mem: NewMemory()}
	m.Mem.LoadImage(p)
	m.Regs[ir.RegSP] = ir.StackBase
	m.fn = p.Main
	m.blk = p.Fn(p.Main).Entry
	return m
}

// EnableProfile attaches a fresh profile that Run will populate.
func (m *Machine) EnableProfile() *Profile {
	p := &Profile{
		BlockFreq:  make([][]uint64, len(m.Prog.Fns)),
		EdgeFreq:   make(map[EdgeKey]uint64),
		CallFreq:   make([]uint64, len(m.Prog.Fns)),
		InclInstrs: make([]uint64, len(m.Prog.Fns)),
	}
	for i, f := range m.Prog.Fns {
		p.BlockFreq[i] = make([]uint64, len(f.Blocks))
	}
	p.CallFreq[m.Prog.Main]++
	m.prof = p
	return p
}

// Run executes until the program halts or limit instructions have executed.
// It returns ErrLimit if the budget ran out.
func (m *Machine) Run(limit uint64) error {
	for {
		done, err := m.StepBlock()
		if err != nil {
			return err
		}
		if done {
			if m.prof != nil {
				m.prof.DynInstrs = m.Count
				m.prof.InclInstrs[m.Prog.Main] += m.Count - m.curEntered
			}
			return nil
		}
		if m.Count > limit {
			return fmt.Errorf("%w (limit %d)", ErrLimit, limit)
		}
	}
}

// StepBlock executes the current basic block including its terminator and
// advances control. It returns done=true when the program halts.
func (m *Machine) StepBlock() (done bool, err error) {
	f := m.Prog.Fn(m.fn)
	b := f.Block(m.blk)
	if m.prof != nil {
		m.prof.BlockFreq[m.fn][m.blk]++
	}
	if m.Trace != nil {
		m.Trace(m.fn, m.blk)
	}
	for _, in := range b.Instrs {
		m.Exec(in)
	}
	m.Count++ // the terminator
	switch b.Term.Kind {
	case ir.TermGoto:
		m.edge(b.Term.Taken)
		m.blk = b.Term.Taken
	case ir.TermBr:
		if m.Regs[b.Term.Cond] != 0 {
			m.edge(b.Term.Taken)
			m.blk = b.Term.Taken
		} else {
			m.edge(b.Term.Fall)
			m.blk = b.Term.Fall
		}
	case ir.TermCall:
		m.stack = append(m.stack, retAddr{fn: m.fn, blk: b.Term.Fall})
		if m.prof != nil {
			m.prof.CallFreq[b.Term.Callee]++
			m.inclEnter = append(m.inclEnter, m.curEntered)
			m.curEntered = m.Count
		}
		m.fn = b.Term.Callee
		m.blk = m.Prog.Fn(m.fn).Entry
	case ir.TermRet:
		if len(m.stack) == 0 {
			return true, nil // return from main ends the program
		}
		if m.prof != nil {
			m.prof.InclInstrs[m.fn] += m.Count - m.curEntered
			m.curEntered = m.inclEnter[len(m.inclEnter)-1]
			m.inclEnter = m.inclEnter[:len(m.inclEnter)-1]
		}
		top := m.stack[len(m.stack)-1]
		m.stack = m.stack[:len(m.stack)-1]
		m.fn, m.blk = top.fn, top.blk
	case ir.TermHalt:
		return true, nil
	}
	return false, nil
}

func (m *Machine) edge(to ir.BlockID) {
	if m.prof != nil {
		m.prof.EdgeFreq[EdgeKey{Fn: m.fn, From: m.blk, To: to}]++
	}
}

// Exec executes one straight-line instruction against the machine state.
// It is exported because the cycle simulator reuses it for functional
// execution (with its own register/memory views via ExecOn).
func (m *Machine) Exec(in ir.Instr) {
	m.Count++
	ExecOn(in, &m.Regs, m.Mem.Load, m.Mem.Store)
}

// ExecOn executes one instruction against an arbitrary register file and
// memory access functions. This is the single functional-semantics
// implementation shared by the emulator and the Multiscalar simulator, so
// the two can never diverge.
func ExecOn(in ir.Instr, regs *[ir.NumRegs]uint64, load func(uint64) uint64, store func(uint64, uint64)) {
	r := func(x ir.Reg) uint64 { return regs[x] }
	set := func(x ir.Reg, v uint64) {
		if x != ir.RegZero {
			regs[x] = v
		}
	}
	i64 := func(x ir.Reg) int64 { return int64(regs[x]) }
	f64 := func(x ir.Reg) float64 { return ir.F64(regs[x]) }
	setf := func(x ir.Reg, v float64) { set(x, ir.F64Bits(v)) }
	b2i := func(b bool) uint64 {
		if b {
			return 1
		}
		return 0
	}
	switch in.Op {
	case ir.OpNop:
	case ir.OpAdd:
		set(in.Dst, uint64(i64(in.Src1)+i64(in.Src2)))
	case ir.OpSub:
		set(in.Dst, uint64(i64(in.Src1)-i64(in.Src2)))
	case ir.OpMul:
		set(in.Dst, uint64(i64(in.Src1)*i64(in.Src2)))
	case ir.OpDiv:
		if d := i64(in.Src2); d != 0 {
			set(in.Dst, uint64(i64(in.Src1)/d))
		} else {
			set(in.Dst, 0)
		}
	case ir.OpRem:
		if d := i64(in.Src2); d != 0 {
			set(in.Dst, uint64(i64(in.Src1)%d))
		} else {
			set(in.Dst, 0)
		}
	case ir.OpAnd:
		set(in.Dst, r(in.Src1)&r(in.Src2))
	case ir.OpOr:
		set(in.Dst, r(in.Src1)|r(in.Src2))
	case ir.OpXor:
		set(in.Dst, r(in.Src1)^r(in.Src2))
	case ir.OpShl:
		set(in.Dst, r(in.Src1)<<(r(in.Src2)&63))
	case ir.OpShr:
		set(in.Dst, uint64(i64(in.Src1)>>(r(in.Src2)&63)))
	case ir.OpSlt:
		set(in.Dst, b2i(i64(in.Src1) < i64(in.Src2)))
	case ir.OpSle:
		set(in.Dst, b2i(i64(in.Src1) <= i64(in.Src2)))
	case ir.OpSeq:
		set(in.Dst, b2i(r(in.Src1) == r(in.Src2)))
	case ir.OpSne:
		set(in.Dst, b2i(r(in.Src1) != r(in.Src2)))
	case ir.OpAddI:
		set(in.Dst, uint64(i64(in.Src1)+in.Imm))
	case ir.OpMulI:
		set(in.Dst, uint64(i64(in.Src1)*in.Imm))
	case ir.OpAndI:
		set(in.Dst, r(in.Src1)&uint64(in.Imm))
	case ir.OpOrI:
		set(in.Dst, r(in.Src1)|uint64(in.Imm))
	case ir.OpXorI:
		set(in.Dst, r(in.Src1)^uint64(in.Imm))
	case ir.OpShlI:
		set(in.Dst, r(in.Src1)<<(uint64(in.Imm)&63))
	case ir.OpShrI:
		set(in.Dst, uint64(i64(in.Src1)>>(uint64(in.Imm)&63)))
	case ir.OpSltI:
		set(in.Dst, b2i(i64(in.Src1) < in.Imm))
	case ir.OpSeqI:
		set(in.Dst, b2i(i64(in.Src1) == in.Imm))
	case ir.OpMovI:
		set(in.Dst, uint64(in.Imm))
	case ir.OpMov:
		set(in.Dst, r(in.Src1))
	case ir.OpLoad:
		set(in.Dst, load(uint64(i64(in.Src1)+in.Imm)))
	case ir.OpStore:
		store(uint64(i64(in.Src1)+in.Imm), r(in.Dst))
	case ir.OpFAdd:
		setf(in.Dst, f64(in.Src1)+f64(in.Src2))
	case ir.OpFSub:
		setf(in.Dst, f64(in.Src1)-f64(in.Src2))
	case ir.OpFMul:
		setf(in.Dst, f64(in.Src1)*f64(in.Src2))
	case ir.OpFDiv:
		setf(in.Dst, fdiv(f64(in.Src1), f64(in.Src2)))
	case ir.OpFNeg:
		setf(in.Dst, -f64(in.Src1))
	case ir.OpFAbs:
		setf(in.Dst, fabs(f64(in.Src1)))
	case ir.OpFSqrt:
		setf(in.Dst, fsqrt(f64(in.Src1)))
	case ir.OpFSlt:
		set(in.Dst, b2i(f64(in.Src1) < f64(in.Src2)))
	case ir.OpFSle:
		set(in.Dst, b2i(f64(in.Src1) <= f64(in.Src2)))
	case ir.OpFSeq:
		set(in.Dst, b2i(f64(in.Src1) == f64(in.Src2)))
	case ir.OpFMovI:
		set(in.Dst, uint64(in.Imm))
	case ir.OpCvtIF:
		setf(in.Dst, float64(i64(in.Src1)))
	case ir.OpCvtFI:
		set(in.Dst, uint64(int64(f64(in.Src1))))
	default:
		panic(fmt.Sprintf("emu: unimplemented opcode %v", in.Op))
	}
}

func fdiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func fabs(a float64) float64 {
	if a < 0 {
		return -a
	}
	return a
}

// fsqrt is Newton's method sqrt to avoid importing math in the hot loop; the
// simulator and emulator share it so results agree bit-for-bit.
func fsqrt(a float64) float64 {
	if a <= 0 {
		return 0
	}
	x := a
	for i := 0; i < 32; i++ {
		nx := 0.5 * (x + a/x)
		if nx == x {
			break
		}
		x = nx
	}
	return x
}

// PC returns the current function and block (for tests).
func (m *Machine) PC() (ir.FnID, ir.BlockID) { return m.fn, m.blk }

// Depth returns the current call-stack depth.
func (m *Machine) Depth() int { return len(m.stack) }
