package dataflow

import (
	"testing"
	"testing/quick"

	"multiscalar/internal/cfganal"
	"multiscalar/internal/ir"
)

func analyzeMain(t *testing.T, p *ir.Program) *Facts {
	t.Helper()
	return Analyze(cfganal.Analyze(p.Fn(p.Main)))
}

func TestRegSetBasics(t *testing.T) {
	var s RegSet
	s = s.Add(ir.R(3)).Add(ir.F(0)).Add(ir.R(3))
	if !s.Has(ir.R(3)) || !s.Has(ir.F(0)) || s.Has(ir.R(4)) {
		t.Errorf("membership wrong: %b", s)
	}
	if s.Count() != 2 {
		t.Errorf("Count = %d, want 2", s.Count())
	}
	regs := s.Regs()
	if len(regs) != 2 || regs[0] != ir.R(3) || regs[1] != ir.F(0) {
		t.Errorf("Regs = %v", regs)
	}
	if s.Minus(RegSet(0).Add(ir.R(3))).Has(ir.R(3)) {
		t.Error("Minus did not remove")
	}
}

func TestRegSetProperties(t *testing.T) {
	f := func(a, b uint64, r uint8) bool {
		sa, sb := RegSet(a), RegSet(b)
		reg := ir.Reg(r % ir.NumRegs)
		if !sa.Add(reg).Has(reg) {
			return false
		}
		u := sa.Union(sb)
		if sa.Count() > u.Count() || sb.Count() > u.Count() {
			return false
		}
		return !sa.Minus(sb).Has(reg) || !sb.Has(reg) || !sa.Has(reg) == false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBlockUseDef(t *testing.T) {
	b := ir.NewBuilder("p")
	f := b.Func("main")
	// r3 defined then used (not exposed); r4 used before def (exposed);
	// branch condition r5 exposed.
	f.Block("entry").
		MovI(ir.R(3), 1).
		Add(ir.R(4), ir.R(3), ir.R(4)).
		Br(ir.R(5), "end", "alt")
	f.Block("alt").Goto("end")
	f.Block("end").Halt()
	f.End()
	fa := analyzeMain(t, b.Build())
	bf := fa.Blocks[0]
	if bf.Use.Has(ir.R(3)) {
		t.Error("r3 should not be upward-exposed")
	}
	if !bf.Use.Has(ir.R(4)) {
		t.Error("r4 should be upward-exposed")
	}
	if !bf.Use.Has(ir.R(5)) {
		t.Error("branch condition should be upward-exposed")
	}
	if !bf.Def.Has(ir.R(3)) || !bf.Def.Has(ir.R(4)) {
		t.Error("defs wrong")
	}
}

// defUseProg: b0 defines r3; diamond b1(br)/b2/b3; b4 uses r3.
func defUseProg(t *testing.T) *ir.Program {
	t.Helper()
	b := ir.NewBuilder("p")
	f := b.Func("main")
	f.Block("def").MovI(ir.R(3), 42).MovI(ir.R(6), 1).Br(ir.R(6), "left", "right")
	f.Block("left").MovI(ir.R(7), 1).Goto("join")
	f.Block("right").MovI(ir.R(7), 2).Goto("join")
	f.Block("join").Add(ir.R(8), ir.R(3), ir.R(7)).Halt()
	f.End()
	return b.Build()
}

func TestDefUseEdges(t *testing.T) {
	fa := analyzeMain(t, defUseProg(t))
	// Expect r3: b0->b3, r7: b1->b3 and b2->b3.
	want := map[DefUseEdge]bool{
		{Reg: ir.R(3), Def: 0, Use: 3}: true,
		{Reg: ir.R(7), Def: 1, Use: 3}: true,
		{Reg: ir.R(7), Def: 2, Use: 3}: true,
	}
	got := map[DefUseEdge]bool{}
	for _, e := range fa.Edges {
		e.Freq = 0
		got[e] = true
	}
	for e := range want {
		if !got[e] {
			t.Errorf("missing edge %+v (got %v)", e, fa.Edges)
		}
	}
	for e := range got {
		if !want[e] {
			t.Errorf("spurious edge %+v", e)
		}
	}
}

func TestDefUseKilledByRedefinition(t *testing.T) {
	b := ir.NewBuilder("p")
	f := b.Func("main")
	f.Block("a").MovI(ir.R(3), 1).Goto("b")
	f.Block("b").MovI(ir.R(3), 2).Goto("c") // kills a's def
	f.Block("c").AddI(ir.R(4), ir.R(3), 0).Halt()
	f.End()
	fa := analyzeMain(t, b.Build())
	for _, e := range fa.Edges {
		if e.Reg == ir.R(3) && e.Def == 0 {
			t.Errorf("killed def still reaches: %+v", e)
		}
	}
}

func TestCodependentSet(t *testing.T) {
	fa := analyzeMain(t, defUseProg(t))
	var edge DefUseEdge
	found := false
	for _, e := range fa.Edges {
		if e.Reg == ir.R(3) && e.Def == 0 && e.Use == 3 {
			edge = e
			found = true
		}
	}
	if !found {
		t.Fatal("r3 edge not found")
	}
	set := fa.Codependent(edge)
	for _, b := range []ir.BlockID{0, 1, 2, 3} {
		if !set[b] {
			t.Errorf("codependent set missing b%d: %v", b, set)
		}
	}
}

func TestCodependentExcludesOffPath(t *testing.T) {
	b := ir.NewBuilder("p")
	f := b.Func("main")
	f.Block("def").MovI(ir.R(3), 1).MovI(ir.R(6), 1).Br(ir.R(6), "on", "off")
	f.Block("on").AddI(ir.R(4), ir.R(3), 0).Goto("end")
	f.Block("off").MovI(ir.R(9), 5).Goto("end")
	f.Block("end").Halt()
	f.End()
	fa := analyzeMain(t, b.Build())
	var edge DefUseEdge
	for _, e := range fa.Edges {
		if e.Reg == ir.R(3) && e.Use == 1 {
			edge = e
		}
	}
	if edge.Reg != ir.R(3) {
		t.Fatal("edge not found")
	}
	set := fa.Codependent(edge)
	if set[2] {
		t.Errorf("off-path block in codependent set: %v", set)
	}
	if !set[0] || !set[1] {
		t.Errorf("endpoints missing: %v", set)
	}
}

func TestLivenessAcrossBranch(t *testing.T) {
	fa := analyzeMain(t, defUseProg(t))
	// r3 defined in b0, used in b3: live out of b0, live in to b1, b2, b3.
	for _, blk := range []int{1, 2, 3} {
		if !fa.Blocks[blk].LiveIn.Has(ir.R(3)) {
			t.Errorf("r3 not live into b%d", blk)
		}
	}
	if !fa.Blocks[0].LiveOut.Has(ir.R(3)) {
		t.Error("r3 not live out of b0")
	}
}

func TestChainsStopAtCalls(t *testing.T) {
	b := ir.NewBuilder("p")
	callee := b.DeclareFn("g")
	f := b.Func("main")
	f.Block("a").MovI(ir.R(3), 1).Call(callee, "b")
	f.Block("b").AddI(ir.R(4), ir.R(3), 0).Halt()
	f.End()
	g := b.Func("g")
	g.Block("entry").Ret()
	g.End()
	fa := analyzeMain(t, b.Build())
	for _, e := range fa.Edges {
		if e.Def == 0 && e.Use == 1 {
			t.Errorf("def-use chain crossed a call: %+v", e)
		}
	}
}

func TestEdgesDeterministicOrder(t *testing.T) {
	p := defUseProg(t)
	a := analyzeMain(t, p)
	b := analyzeMain(t, p)
	if len(a.Edges) != len(b.Edges) {
		t.Fatal("nondeterministic edge count")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("nondeterministic order at %d: %+v vs %+v", i, a.Edges[i], b.Edges[i])
		}
	}
}
