// Package dataflow implements the register dataflow analyses the paper's
// compiler uses: block-level def/use summaries, liveness, reaching
// definitions, def-use chains (the input to the data-dependence heuristic),
// and codependent sets (the blocks on all control-flow paths from a producer
// block to a consumer block).
//
// Only register dependences are analysed; memory dependences are left to the
// hardware (ARB + synchronization table), exactly as the paper does for
// pointer-heavy code.
package dataflow

import (
	"sort"
	"strings"

	"multiscalar/internal/cfganal"
	"multiscalar/internal/ir"
)

// RegSet is a bit set over the 64 architectural registers.
type RegSet uint64

// Add returns the set with register r added.
func (s RegSet) Add(r ir.Reg) RegSet { return s | 1<<uint(r) }

// Has reports whether register r is in the set.
func (s RegSet) Has(r ir.Reg) bool { return s&(1<<uint(r)) != 0 }

// Union returns the union of the two sets.
func (s RegSet) Union(t RegSet) RegSet { return s | t }

// Minus returns s with the members of t removed.
func (s RegSet) Minus(t RegSet) RegSet { return s &^ t }

// Intersect returns the registers present in both sets.
func (s RegSet) Intersect(t RegSet) RegSet { return s & t }

// Count returns the number of registers in the set.
func (s RegSet) Count() int {
	n := 0
	for v := uint64(s); v != 0; v &= v - 1 {
		n++
	}
	return n
}

// String renders the set as "{r3 r5 f0}" in ascending register order.
func (s RegSet) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, r := range s.Regs() {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(r.String())
	}
	sb.WriteByte('}')
	return sb.String()
}

// Regs returns the members in ascending order.
func (s RegSet) Regs() []ir.Reg {
	var out []ir.Reg
	for r := 0; r < ir.NumRegs; r++ {
		if s.Has(ir.Reg(r)) {
			out = append(out, ir.Reg(r))
		}
	}
	return out
}

// BlockFacts summarizes one basic block.
type BlockFacts struct {
	// Use is the set of registers read before any write in the block
	// (upward-exposed uses), including the branch condition register.
	Use RegSet
	// Def is the set of registers written anywhere in the block.
	Def RegSet
	// LiveIn/LiveOut are the liveness solutions.
	LiveIn, LiveOut RegSet
}

// DefUseEdge is a register dependence from a definition in one block to an
// upward-exposed use in another (or the same) block, at block granularity —
// the granularity at which the paper's data-dependence heuristic works.
type DefUseEdge struct {
	Reg ir.Reg
	Def ir.BlockID // block containing the reaching definition
	Use ir.BlockID // block with the exposed use
	// Freq is the profiled execution frequency of the dependence (filled by
	// the caller from profile data; zero when no profile is attached).
	Freq uint64
}

// Facts holds the dataflow solutions for one function.
type Facts struct {
	Fn     *ir.Function
	G      *cfganal.CFG
	Blocks []BlockFacts
	// Edges are the def-use edges across blocks, deterministically ordered.
	Edges []DefUseEdge
}

// Analyze computes all register dataflow facts for the function.
func Analyze(g *cfganal.CFG) *Facts {
	f := g.Fn
	n := len(f.Blocks)
	facts := &Facts{Fn: f, G: g, Blocks: make([]BlockFacts, n)}
	for i, b := range f.Blocks {
		use, def := blockUseDef(b)
		facts.Blocks[i] = BlockFacts{Use: use, Def: def}
	}
	facts.liveness()
	facts.defUseEdges()
	return facts
}

// blockUseDef computes the upward-exposed uses and the definitions of a
// block, including the terminator's condition register.
func blockUseDef(b *ir.Block) (use, def RegSet) {
	var scratch [2]ir.Reg
	for _, in := range b.Instrs {
		for _, r := range in.Uses(scratch[:0]) {
			if r != ir.RegZero && !def.Has(r) {
				use = use.Add(r)
			}
		}
		if d, ok := in.Def(); ok {
			def = def.Add(d)
		}
	}
	if b.Term.Kind == ir.TermBr {
		if c := b.Term.Cond; c != ir.RegZero && !def.Has(c) {
			use = use.Add(c)
		}
	}
	return use, def
}

// liveness solves backward liveness over the CFG. Calls are treated as
// reading and preserving all registers (our calling convention is
// caller-managed), and returns/halts conservatively treat every register as
// live-out of the function so that cross-function dependences are never
// dropped.
func (fa *Facts) liveness() {
	const allLive = ^RegSet(0)
	for changed := true; changed; {
		changed = false
		// Iterate in reverse RPO (postorder) for fast convergence.
		for i := len(fa.G.RPO) - 1; i >= 0; i-- {
			b := fa.G.RPO[i]
			blk := fa.Fn.Block(b)
			var out RegSet
			switch blk.Term.Kind {
			case ir.TermRet, ir.TermHalt:
				out = allLive
			case ir.TermCall:
				// The callee may read anything; its return continues at Fall.
				out = allLive
			default:
				for _, s := range fa.G.Succs[b] {
					out = out.Union(fa.Blocks[s].LiveIn)
				}
			}
			in := fa.Blocks[b].Use.Union(out.Minus(fa.Blocks[b].Def))
			if in != fa.Blocks[b].LiveIn || out != fa.Blocks[b].LiveOut {
				fa.Blocks[b].LiveIn = in
				fa.Blocks[b].LiveOut = out
				changed = true
			}
		}
	}
}

// defUseEdges computes block-granularity def-use chains with a reaching-defs
// style propagation: for each register, the set of blocks whose definition of
// that register reaches the entry of each block.
func (fa *Facts) defUseEdges() {
	n := len(fa.Fn.Blocks)
	// reachIn[b] maps reg -> set of def blocks reaching entry of b.
	reachIn := make([]map[ir.Reg]map[ir.BlockID]bool, n)
	for i := range reachIn {
		reachIn[i] = make(map[ir.Reg]map[ir.BlockID]bool)
	}
	outOf := func(b ir.BlockID) map[ir.Reg]map[ir.BlockID]bool {
		out := make(map[ir.Reg]map[ir.BlockID]bool)
		def := fa.Blocks[b].Def
		for r, defs := range reachIn[b] {
			if def.Has(r) {
				continue // killed
			}
			out[r] = defs
		}
		for _, r := range def.Regs() {
			out[r] = map[ir.BlockID]bool{b: true}
		}
		return out
	}
	for changed := true; changed; {
		changed = false
		for _, b := range fa.G.RPO {
			blk := fa.Fn.Block(b)
			if blk.Term.Kind == ir.TermCall || blk.Term.Kind == ir.TermRet || blk.Term.Kind == ir.TermHalt {
				// Dependences across calls/returns are inter-procedural; the
				// paper terminates tasks there, so chains stop too.
				continue
			}
			out := outOf(b)
			for _, s := range fa.G.Succs[b] {
				for r, defs := range out {
					m := reachIn[s][r]
					if m == nil {
						m = make(map[ir.BlockID]bool)
						reachIn[s][r] = m
					}
					for d := range defs {
						if !m[d] {
							m[d] = true
							changed = true
						}
					}
				}
			}
		}
	}
	seen := make(map[DefUseEdge]bool)
	for b := 0; b < n; b++ {
		use := fa.Blocks[b].Use
		for _, r := range use.Regs() {
			for d := range reachIn[b][r] {
				e := DefUseEdge{Reg: r, Def: d, Use: ir.BlockID(b)}
				if d != ir.BlockID(b) && !seen[e] {
					seen[e] = true
					fa.Edges = append(fa.Edges, e)
				}
			}
		}
	}
	sort.Slice(fa.Edges, func(i, j int) bool {
		a, b := fa.Edges[i], fa.Edges[j]
		if a.Def != b.Def {
			return a.Def < b.Def
		}
		if a.Use != b.Use {
			return a.Use < b.Use
		}
		return a.Reg < b.Reg
	})
}

// Codependent returns the codependent set of the def-use edge: every block on
// some control-flow path from e.Def to e.Use (endpoints included), computed
// as forward-reachable-from-def intersected with backward-reachable-from-use.
// Paths never extend through call/ret/halt terminators, matching how the
// chains were built.
func (fa *Facts) Codependent(e DefUseEdge) map[ir.BlockID]bool {
	fwd := fa.reach(e.Def, false)
	bwd := fa.reach(e.Use, true)
	set := make(map[ir.BlockID]bool)
	for b := range fwd {
		if bwd[b] {
			set[b] = true
		}
	}
	set[e.Def] = true
	set[e.Use] = true
	return set
}

func (fa *Facts) reach(from ir.BlockID, backward bool) map[ir.BlockID]bool {
	seen := map[ir.BlockID]bool{from: true}
	work := []ir.BlockID{from}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		var next []ir.BlockID
		if backward {
			next = fa.G.Preds[b]
		} else {
			t := fa.Fn.Block(b).Term.Kind
			if t == ir.TermCall || t == ir.TermRet || t == ir.TermHalt {
				continue
			}
			next = fa.G.Succs[b]
		}
		for _, s := range next {
			if backward {
				t := fa.Fn.Block(s).Term.Kind
				if t == ir.TermCall || t == ir.TermRet || t == ir.TermHalt {
					continue
				}
			}
			if !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	return seen
}
