package cfganal

import (
	"testing"

	"multiscalar/internal/ir"
)

// diamondLoop builds:
//
//	b0 entry -> b1 head
//	b1 head  -> b2 | b5 (exit)
//	b2       -> b3 | b4
//	b3       -> b4
//	b4 latch -> b1
//	b5 exit  -> halt
func diamondLoop(t *testing.T) *ir.Function {
	t.Helper()
	b := ir.NewBuilder("p")
	f := b.Func("main")
	f.Block("entry").MovI(ir.R(3), 0).Goto("head")
	f.Block("head").SltI(ir.R(5), ir.R(3), 10).Br(ir.R(5), "left", "exit")
	f.Block("left").AndI(ir.R(6), ir.R(3), 1).Br(ir.R(6), "odd", "latch")
	f.Block("odd").AddI(ir.R(3), ir.R(3), 1).Goto("latch")
	f.Block("latch").AddI(ir.R(3), ir.R(3), 1).Goto("head")
	f.Block("exit").Halt()
	f.End()
	return b.Build().Fn(0)
}

func TestDFSNumbering(t *testing.T) {
	g := Analyze(diamondLoop(t))
	if g.DFSNum[0] != 0 {
		t.Errorf("entry DFS num = %d", g.DFSNum[0])
	}
	// Every reachable block numbered exactly once, ascending along tree edges.
	seen := map[int]bool{}
	for b, n := range g.DFSNum {
		if n < 0 {
			t.Errorf("block %d unreachable", b)
			continue
		}
		if seen[n] {
			t.Errorf("duplicate DFS number %d", n)
		}
		seen[n] = true
	}
}

func TestBackEdgeDetection(t *testing.T) {
	g := Analyze(diamondLoop(t))
	if !g.IsBackEdge(4, 1) {
		t.Error("latch->head not detected as back edge")
	}
	if g.IsBackEdge(0, 1) || g.IsBackEdge(1, 2) {
		t.Error("forward tree edge misclassified as back edge")
	}
}

func TestDominators(t *testing.T) {
	g := Analyze(diamondLoop(t))
	cases := []struct {
		a, b ir.BlockID
		want bool
	}{
		{0, 5, true},  // entry dominates all
		{1, 4, true},  // head dominates latch
		{2, 4, true},  // left dominates latch
		{3, 4, false}, // odd does not dominate latch (path through left)
		{4, 1, false}, // latch does not dominate head
		{1, 1, true},  // reflexive
	}
	for _, c := range cases {
		if got := g.Dominates(c.a, c.b); got != c.want {
			t.Errorf("Dominates(%d,%d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestNaturalLoopDetection(t *testing.T) {
	g := Analyze(diamondLoop(t))
	if len(g.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(g.Loops))
	}
	l := g.Loops[0]
	if l.Header != 1 {
		t.Errorf("header = %d, want 1", l.Header)
	}
	wantBody := map[ir.BlockID]bool{1: true, 2: true, 3: true, 4: true}
	if len(l.Blocks) != len(wantBody) {
		t.Errorf("body = %v", l.Blocks)
	}
	for _, b := range l.Blocks {
		if !wantBody[b] {
			t.Errorf("unexpected loop member %d", b)
		}
	}
	if len(l.Latches) != 1 || l.Latches[0] != 4 {
		t.Errorf("latches = %v, want [4]", l.Latches)
	}
	if l.Depth != 1 {
		t.Errorf("depth = %d", l.Depth)
	}
}

func TestLoopEntryExitEdges(t *testing.T) {
	g := Analyze(diamondLoop(t))
	if !g.IsLoopEntryEdge(0, 1) {
		t.Error("entry->head should be a loop entry edge")
	}
	if !g.IsLoopExitEdge(1, 5) {
		t.Error("head->exit should be a loop exit edge")
	}
	if g.IsLoopEntryEdge(2, 3) || g.IsLoopExitEdge(2, 3) {
		t.Error("intra-loop edge misclassified")
	}
}

func nestedLoops(t *testing.T) *ir.Function {
	t.Helper()
	b := ir.NewBuilder("p")
	f := b.Func("main")
	f.Block("entry").MovI(ir.R(3), 0).Goto("ohead")
	f.Block("ohead").SltI(ir.R(5), ir.R(3), 10).Br(ir.R(5), "ibodyinit", "exit")
	f.Block("ibodyinit").MovI(ir.R(4), 0).Goto("ihead")
	f.Block("ihead").SltI(ir.R(6), ir.R(4), 5).Br(ir.R(6), "ibody", "olatch")
	f.Block("ibody").AddI(ir.R(4), ir.R(4), 1).Goto("ihead")
	f.Block("olatch").AddI(ir.R(3), ir.R(3), 1).Goto("ohead")
	f.Block("exit").Halt()
	f.End()
	return b.Build().Fn(0)
}

func TestNestedLoopNesting(t *testing.T) {
	g := Analyze(nestedLoops(t))
	if len(g.Loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(g.Loops))
	}
	outer, inner := g.Loops[0], g.Loops[1]
	if outer.Depth != 1 || inner.Depth != 2 {
		t.Fatalf("depths = %d,%d, want 1,2", outer.Depth, inner.Depth)
	}
	if inner.Parent != outer {
		t.Error("inner loop's parent is not the outer loop")
	}
	if !outer.Contains(inner.Header) {
		t.Error("outer loop does not contain inner header")
	}
	// LoopOf maps inner blocks to the inner loop.
	if g.LoopOf[inner.Header] != inner {
		t.Error("LoopOf(inner header) is not the inner loop")
	}
	if g.LoopOf[outer.Header] != outer {
		t.Error("LoopOf(outer header) is not the outer loop")
	}
}

func TestUnreachableBlocks(t *testing.T) {
	b := ir.NewBuilder("p")
	f := b.Func("main")
	f.Block("entry").Goto("end")
	f.Block("dead").Nop().Goto("end")
	f.Block("end").Halt()
	f.End()
	g := Analyze(b.Build().Fn(0))
	if g.DFSNum[1] != -1 {
		t.Errorf("dead block DFS num = %d, want -1", g.DFSNum[1])
	}
	if g.IDom[1] != ir.NoBlock {
		t.Errorf("dead block has idom %d", g.IDom[1])
	}
}

func TestRPOOrdering(t *testing.T) {
	g := Analyze(diamondLoop(t))
	pos := map[ir.BlockID]int{}
	for i, b := range g.RPO {
		pos[b] = i
	}
	// In RPO, a block precedes its non-back-edge successors.
	for b, succs := range g.Succs {
		for _, s := range succs {
			if g.IsBackEdge(ir.BlockID(b), s) {
				continue
			}
			if pos[ir.BlockID(b)] >= pos[s] {
				t.Errorf("RPO violated for edge %d->%d", b, s)
			}
		}
	}
}
