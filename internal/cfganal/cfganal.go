// Package cfganal provides the control-flow-graph analyses the task selector
// needs: depth-first numbering (used by the paper's is_a_terminal_edge test),
// dominators, and natural-loop detection with loop nesting.
//
// All analyses are per-function and treat a call's return-to block as the
// only successor of a call block, matching the IR's CFG definition.
package cfganal

import (
	"fmt"

	"multiscalar/internal/ir"
)

// CFG caches the analyses for one function. Build it once with Analyze and
// share it; it is immutable afterwards.
type CFG struct {
	Fn *ir.Function

	// Succs and Preds are the static successor/predecessor lists per block.
	Succs [][]ir.BlockID
	Preds [][]ir.BlockID

	// DFSNum is the depth-first discovery order of each block starting at the
	// entry (entry = 0). Unreachable blocks have DFSNum -1. The paper marks an
	// edge (blk, ch) terminal when dfs_num(blk) < dfs_num(ch) is FALSE — i.e.
	// back edges (dfs_num(ch) <= dfs_num(blk)) terminate tasks.
	DFSNum []int

	// RPO is the reverse postorder of reachable blocks, for dataflow.
	RPO []ir.BlockID

	// RPOIdx is each block's position in RPO (-1 if unreachable). This is the
	// numbering the terminal-edge test uses: in reverse postorder, every
	// forward and reconverging (cross) edge strictly increases, so only
	// retreating (loop back) edges fail dfs_num(blk) < dfs_num(ch).
	RPOIdx []int

	// IDom is the immediate dominator of each block (entry's is itself;
	// unreachable blocks have NoBlock).
	IDom []ir.BlockID

	// Loops are the natural loops, outermost first.
	Loops []*Loop

	// LoopOf maps a block to the innermost loop containing it (nil if none).
	LoopOf []*Loop
}

// Loop is a natural loop identified by its header and back edges.
type Loop struct {
	Header ir.BlockID
	// Blocks are the members of the loop body, header included, in ascending
	// block order.
	Blocks []ir.BlockID
	// Latches are the sources of the back edges into the header.
	Latches []ir.BlockID
	// Parent is the enclosing loop, nil for outermost loops.
	Parent *Loop
	// Depth is 1 for outermost loops.
	Depth int

	inLoop map[ir.BlockID]bool
}

// Contains reports whether the loop body includes the block.
func (l *Loop) Contains(b ir.BlockID) bool { return l.inLoop[b] }

// NumInstrs returns the static instruction count of the loop body
// (terminators included).
func (l *Loop) NumInstrs(f *ir.Function) int {
	n := 0
	for _, id := range l.Blocks {
		n += f.Block(id).Len()
	}
	return n
}

// Analyze runs all analyses over the function.
func Analyze(f *ir.Function) *CFG {
	n := len(f.Blocks)
	g := &CFG{
		Fn:     f,
		Succs:  make([][]ir.BlockID, n),
		Preds:  make([][]ir.BlockID, n),
		DFSNum: make([]int, n),
		IDom:   make([]ir.BlockID, n),
		LoopOf: make([]*Loop, n),
	}
	for i, b := range f.Blocks {
		g.Succs[i] = b.Succs(nil)
		g.DFSNum[i] = -1
		g.IDom[i] = ir.NoBlock
	}
	for i := range g.Succs {
		for _, s := range g.Succs[i] {
			g.Preds[s] = append(g.Preds[s], ir.BlockID(i))
		}
	}
	g.dfs()
	g.dominators()
	g.findLoops()
	return g
}

// dfs computes DFSNum (discovery order) and RPO using an iterative DFS that
// visits successors in their static order, matching the task selector's
// traversal order.
func (g *CFG) dfs() {
	n := len(g.Succs)
	state := make([]uint8, n) // 0 unvisited, 1 on stack, 2 done
	post := make([]ir.BlockID, 0, n)
	type frame struct {
		b    ir.BlockID
		next int
	}
	stack := []frame{{b: g.Fn.Entry}}
	num := 0
	g.DFSNum[g.Fn.Entry] = num
	num++
	state[g.Fn.Entry] = 1
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		if fr.next < len(g.Succs[fr.b]) {
			s := g.Succs[fr.b][fr.next]
			fr.next++
			if state[s] == 0 {
				state[s] = 1
				g.DFSNum[s] = num
				num++
				stack = append(stack, frame{b: s})
			}
			continue
		}
		state[fr.b] = 2
		post = append(post, fr.b)
		stack = stack[:len(stack)-1]
	}
	g.RPO = make([]ir.BlockID, len(post))
	for i, b := range post {
		g.RPO[len(post)-1-i] = b
	}
	g.RPOIdx = make([]int, n)
	for i := range g.RPOIdx {
		g.RPOIdx[i] = -1
	}
	for i, b := range g.RPO {
		g.RPOIdx[b] = i
	}
}

// dominators computes immediate dominators with the Cooper-Harvey-Kennedy
// iterative algorithm over the reverse postorder.
func (g *CFG) dominators() {
	rpoIndex := make([]int, len(g.Succs))
	for i := range rpoIndex {
		rpoIndex[i] = -1
	}
	for i, b := range g.RPO {
		rpoIndex[b] = i
	}
	entry := g.Fn.Entry
	g.IDom[entry] = entry
	intersect := func(a, b ir.BlockID) ir.BlockID {
		for a != b {
			for rpoIndex[a] > rpoIndex[b] {
				a = g.IDom[a]
			}
			for rpoIndex[b] > rpoIndex[a] {
				b = g.IDom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range g.RPO {
			if b == entry {
				continue
			}
			var newIDom ir.BlockID = ir.NoBlock
			for _, p := range g.Preds[b] {
				if g.IDom[p] == ir.NoBlock {
					continue
				}
				if newIDom == ir.NoBlock {
					newIDom = p
				} else {
					newIDom = intersect(newIDom, p)
				}
			}
			if newIDom != ir.NoBlock && g.IDom[b] != newIDom {
				g.IDom[b] = newIDom
				changed = true
			}
		}
	}
}

// Dominates reports whether a dominates b (reflexive).
func (g *CFG) Dominates(a, b ir.BlockID) bool {
	if g.DFSNum[b] < 0 {
		return false
	}
	for {
		if a == b {
			return true
		}
		next := g.IDom[b]
		if next == b || next == ir.NoBlock {
			return false
		}
		b = next
	}
}

// findLoops detects natural loops from back edges (edges whose target
// dominates their source), merges loops sharing a header, and computes
// nesting by body containment.
func (g *CFG) findLoops() {
	byHeader := make(map[ir.BlockID]*Loop)
	var headers []ir.BlockID
	for b := range g.Succs {
		src := ir.BlockID(b)
		if g.DFSNum[src] < 0 {
			continue
		}
		for _, dst := range g.Succs[src] {
			if !g.Dominates(dst, src) {
				continue
			}
			l := byHeader[dst]
			if l == nil {
				l = &Loop{Header: dst, inLoop: map[ir.BlockID]bool{dst: true}}
				byHeader[dst] = l
				headers = append(headers, dst)
			}
			l.Latches = append(l.Latches, src)
			// Walk predecessors backwards from the latch to the header.
			work := []ir.BlockID{src}
			for len(work) > 0 {
				x := work[len(work)-1]
				work = work[:len(work)-1]
				if l.inLoop[x] {
					continue
				}
				l.inLoop[x] = true
				for _, p := range g.Preds[x] {
					if g.DFSNum[p] >= 0 {
						work = append(work, p)
					}
				}
			}
		}
	}
	for _, h := range headers {
		l := byHeader[h]
		for b := range g.Succs {
			if l.inLoop[ir.BlockID(b)] {
				l.Blocks = append(l.Blocks, ir.BlockID(b))
			}
		}
	}
	// Nesting: loop A is inside loop B when B contains A's header and A != B.
	// Choose the smallest enclosing body as the parent.
	for _, h := range headers {
		l := byHeader[h]
		var parent *Loop
		for _, h2 := range headers {
			outer := byHeader[h2]
			if outer == l || !outer.inLoop[l.Header] || len(outer.Blocks) <= len(l.Blocks) {
				continue
			}
			if parent == nil || len(outer.Blocks) < len(parent.Blocks) {
				parent = outer
			}
		}
		l.Parent = parent
	}
	for _, h := range headers {
		l := byHeader[h]
		d := 1
		for p := l.Parent; p != nil; p = p.Parent {
			d++
		}
		l.Depth = d
	}
	// Outermost first, then by header for determinism.
	for d := 1; ; d++ {
		found := false
		for _, h := range headers {
			if byHeader[h].Depth == d {
				g.Loops = append(g.Loops, byHeader[h])
				found = true
			}
		}
		if !found {
			break
		}
	}
	// Innermost loop per block.
	for _, l := range g.Loops { // outermost first, inner overwrite
		for _, b := range l.Blocks {
			g.LoopOf[b] = l
		}
	}
}

// IsBackEdge reports whether the edge src->dst is retreating — the edges the
// paper's is_a_terminal_edge treats as terminal (terminal iff
// !(num(src) < num(dst)) under reverse-postorder numbering, so reconverging
// cross edges remain includable and only loop-closing edges terminate).
func (g *CFG) IsBackEdge(src, dst ir.BlockID) bool {
	return g.RPOIdx[src] >= g.RPOIdx[dst]
}

// IsTerminalEdge reports whether the edge src->dst must terminate any task
// it leaves: retreating (back) edges plus the loop entry/exit rules of the
// paper's task-size discussion. This is the shared is_a_terminal_edge test
// used by both the task selector (internal/core) and the static verifier
// (internal/verify), so the two can never disagree about task boundaries.
func (g *CFG) IsTerminalEdge(src, dst ir.BlockID) bool {
	return g.IsBackEdge(src, dst) || g.IsLoopEntryEdge(src, dst) || g.IsLoopExitEdge(src, dst)
}

// LoopHeader reports whether b is the header of some natural loop.
func (g *CFG) LoopHeader(b ir.BlockID) bool {
	for _, l := range g.Loops {
		if l.Header == b {
			return true
		}
	}
	return false
}

// IsLoopExitEdge reports whether src->dst leaves the innermost loop
// containing src.
func (g *CFG) IsLoopExitEdge(src, dst ir.BlockID) bool {
	l := g.LoopOf[src]
	return l != nil && !l.Contains(dst)
}

// IsLoopEntryEdge reports whether src->dst enters a loop that does not
// contain src (dst is inside a loop src is not in).
func (g *CFG) IsLoopEntryEdge(src, dst ir.BlockID) bool {
	l := g.LoopOf[dst]
	if l == nil {
		return false
	}
	for cur := l; cur != nil; cur = cur.Parent {
		if !cur.Contains(src) {
			return true
		}
	}
	return false
}

// String summarizes the analysis for debugging.
func (g *CFG) String() string {
	s := fmt.Sprintf("cfg %s: %d blocks, %d loops", g.Fn.Name, len(g.Succs), len(g.Loops))
	return s
}
