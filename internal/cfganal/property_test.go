package cfganal

import (
	"fmt"
	"testing"

	"multiscalar/internal/ir"
	"multiscalar/internal/progtest"
)

// TestDominatorsAgainstBruteForce checks the iterative dominator solution
// against the definition: a dominates b iff removing a disconnects b from
// the entry. Random structured programs from progtest provide the CFGs.
func TestDominatorsAgainstBruteForce(t *testing.T) {
	seeds := 25
	if testing.Short() {
		seeds = 8
	}
	for seed := 0; seed < seeds; seed++ {
		prog := progtest.Generate(int64(seed))
		for _, f := range prog.Fns {
			g := Analyze(f)
			for a := range f.Blocks {
				for b := range f.Blocks {
					ba, bb := ir.BlockID(a), ir.BlockID(b)
					if g.DFSNum[ba] < 0 || g.DFSNum[bb] < 0 {
						continue
					}
					want := bruteDominates(f, ba, bb)
					if got := g.Dominates(ba, bb); got != want {
						t.Fatalf("seed %d fn %s: Dominates(%d,%d) = %v, brute force %v",
							seed, f.Name, a, b, got, want)
					}
				}
			}
		}
	}
}

// bruteDominates reports whether every path from the entry to b passes
// through a: b unreachable when a's out-edges are removed (a==b trivially
// dominates).
func bruteDominates(f *ir.Function, a, b ir.BlockID) bool {
	if a == b {
		return true
	}
	seen := map[ir.BlockID]bool{f.Entry: true}
	work := []ir.BlockID{f.Entry}
	if f.Entry == a {
		return true // the entry dominates everything reachable
	}
	for len(work) > 0 {
		x := work[len(work)-1]
		work = work[:len(work)-1]
		if x == b {
			return false
		}
		if x == a {
			continue // paths may not continue through a
		}
		for _, s := range f.Block(x).Succs(nil) {
			if !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	return true
}

// TestLoopInvariants checks structural loop properties on random programs:
// headers dominate their bodies, latches are body members with edges to the
// header, and nesting is consistent.
func TestLoopInvariants(t *testing.T) {
	seeds := 25
	if testing.Short() {
		seeds = 8
	}
	for seed := 0; seed < seeds; seed++ {
		prog := progtest.Generate(int64(seed))
		for _, f := range prog.Fns {
			g := Analyze(f)
			for li, l := range g.Loops {
				name := fmt.Sprintf("seed %d fn %s loop %d", seed, f.Name, li)
				if !l.Contains(l.Header) {
					t.Fatalf("%s: header not in body", name)
				}
				for _, b := range l.Blocks {
					if !g.Dominates(l.Header, b) {
						t.Fatalf("%s: header does not dominate member %d", name, b)
					}
				}
				for _, latch := range l.Latches {
					if !l.Contains(latch) {
						t.Fatalf("%s: latch %d outside body", name, latch)
					}
					found := false
					for _, s := range f.Block(latch).Succs(nil) {
						if s == l.Header {
							found = true
						}
					}
					if !found {
						t.Fatalf("%s: latch %d has no edge to header", name, latch)
					}
					if !g.IsBackEdge(latch, l.Header) {
						t.Fatalf("%s: latch edge not classified as back edge", name)
					}
				}
				if l.Parent != nil {
					for _, b := range l.Blocks {
						if !l.Parent.Contains(b) {
							t.Fatalf("%s: member %d missing from parent loop", name, b)
						}
					}
					if l.Depth != l.Parent.Depth+1 {
						t.Fatalf("%s: depth %d, parent depth %d", name, l.Depth, l.Parent.Depth)
					}
				}
			}
		}
	}
}

// TestRPOIdxConsistency: RPOIdx must invert RPO and give -1 for unreachable.
func TestRPOIdxConsistency(t *testing.T) {
	for seed := 0; seed < 10; seed++ {
		prog := progtest.Generate(int64(seed))
		for _, f := range prog.Fns {
			g := Analyze(f)
			for i, b := range g.RPO {
				if g.RPOIdx[b] != i {
					t.Fatalf("seed %d: RPOIdx[%d] = %d, want %d", seed, b, g.RPOIdx[b], i)
				}
			}
			for b := range f.Blocks {
				if (g.DFSNum[b] < 0) != (g.RPOIdx[b] < 0) {
					t.Fatalf("seed %d: reachability disagrees for block %d", seed, b)
				}
			}
		}
	}
}
