package ir

// Clone returns a deep copy of the program. Transforming passes (loop
// unrolling, preheader insertion) clone first so callers keep the original.
func Clone(p *Program) *Program {
	out := &Program{
		Name: p.Name,
		Main: p.Main,
		Data: append([]int64(nil), p.Data...),
	}
	out.Fns = make([]*Function, len(p.Fns))
	for i, f := range p.Fns {
		nf := &Function{ID: f.ID, Name: f.Name, Entry: f.Entry}
		nf.Blocks = make([]*Block, len(f.Blocks))
		for j, b := range f.Blocks {
			nb := &Block{ID: b.ID, Term: b.Term, Addr: b.Addr}
			nb.Instrs = append([]Instr(nil), b.Instrs...)
			nf.Blocks[j] = nb
		}
		out.Fns[i] = nf
	}
	out.laidOut = p.laidOut
	return out
}
