package ir

import (
	"errors"
	"fmt"
)

// ErrInvalid wraps all validation failures so callers can errors.Is on it.
var ErrInvalid = errors.New("invalid IR")

// Validate checks the structural invariants every consumer of the IR relies
// on: block IDs are dense and self-consistent, every terminator target exists,
// every callee exists, opcodes are in range, and main (if set) exists.
func Validate(p *Program) error {
	if len(p.Fns) == 0 {
		return fmt.Errorf("%w: program %q has no functions", ErrInvalid, p.Name)
	}
	if p.Main != NoFn && (p.Main < 0 || int(p.Main) >= len(p.Fns)) {
		return fmt.Errorf("%w: program %q: main %d out of range", ErrInvalid, p.Name, p.Main)
	}
	for i, f := range p.Fns {
		if f == nil {
			return fmt.Errorf("%w: program %q: function slot %d is nil", ErrInvalid, p.Name, i)
		}
		if f.ID != FnID(i) {
			return fmt.Errorf("%w: function %q: ID %d does not match slot %d", ErrInvalid, f.Name, f.ID, i)
		}
		if err := validateFn(p, f); err != nil {
			return err
		}
	}
	return nil
}

func validateFn(p *Program, f *Function) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("%w: function %q has no blocks", ErrInvalid, f.Name)
	}
	if f.Entry < 0 || int(f.Entry) >= len(f.Blocks) {
		return fmt.Errorf("%w: function %q: entry %d out of range", ErrInvalid, f.Name, f.Entry)
	}
	checkTarget := func(b *Block, what string, id BlockID) error {
		if id < 0 || int(id) >= len(f.Blocks) {
			return fmt.Errorf("%w: function %q block %d: %s target %d out of range", ErrInvalid, f.Name, b.ID, what, id)
		}
		return nil
	}
	for i, b := range f.Blocks {
		if b == nil {
			return fmt.Errorf("%w: function %q: block slot %d is nil", ErrInvalid, f.Name, i)
		}
		if b.ID != BlockID(i) {
			return fmt.Errorf("%w: function %q: block ID %d does not match slot %d", ErrInvalid, f.Name, b.ID, i)
		}
		for j, in := range b.Instrs {
			if !in.Op.Valid() {
				return fmt.Errorf("%w: function %q block %d instr %d: bad opcode %d", ErrInvalid, f.Name, b.ID, j, uint8(in.Op))
			}
			if in.Dst >= NumRegs || in.Src1 >= NumRegs || in.Src2 >= NumRegs {
				return fmt.Errorf("%w: function %q block %d instr %d: register out of range", ErrInvalid, f.Name, b.ID, j)
			}
		}
		switch b.Term.Kind {
		case TermGoto:
			if err := checkTarget(b, "goto", b.Term.Taken); err != nil {
				return err
			}
		case TermBr:
			if b.Term.Cond >= NumRegs {
				return fmt.Errorf("%w: function %q block %d: branch condition register out of range", ErrInvalid, f.Name, b.ID)
			}
			if err := checkTarget(b, "branch taken", b.Term.Taken); err != nil {
				return err
			}
			if err := checkTarget(b, "branch fall", b.Term.Fall); err != nil {
				return err
			}
			if b.Term.Taken == b.Term.Fall {
				return fmt.Errorf("%w: function %q block %d: degenerate branch (taken and fall are both %d); use goto — a br with equal arms executes as an unconditional jump but inflates control-transfer and task-target counts", ErrInvalid, f.Name, b.ID, b.Term.Taken)
			}
		case TermCall:
			if b.Term.Callee < 0 || int(b.Term.Callee) >= len(p.Fns) {
				return fmt.Errorf("%w: function %q block %d: callee %d out of range", ErrInvalid, f.Name, b.ID, b.Term.Callee)
			}
			if err := checkTarget(b, "call return", b.Term.Fall); err != nil {
				return err
			}
		case TermRet, TermHalt:
			// no targets
		default:
			return fmt.Errorf("%w: function %q block %d: bad terminator kind %d", ErrInvalid, f.Name, b.ID, uint8(b.Term.Kind))
		}
	}
	return nil
}
