package ir

import (
	"fmt"
	"math"
)

// Opcode enumerates the straight-line instruction set. Control transfer is
// expressed by block terminators, not opcodes.
type Opcode uint8

// Integer opcodes. The *I forms take Src1 and the Imm field.
const (
	OpNop Opcode = iota

	OpAdd // Dst = Src1 + Src2
	OpSub // Dst = Src1 - Src2
	OpMul // Dst = Src1 * Src2
	OpDiv // Dst = Src1 / Src2 (0 if Src2 == 0)
	OpRem // Dst = Src1 % Src2 (0 if Src2 == 0)
	OpAnd // Dst = Src1 & Src2
	OpOr  // Dst = Src1 | Src2
	OpXor // Dst = Src1 ^ Src2
	OpShl // Dst = Src1 << (Src2 & 63)
	OpShr // Dst = Src1 >> (Src2 & 63) (arithmetic)
	OpSlt // Dst = 1 if Src1 < Src2 else 0 (signed)
	OpSle // Dst = 1 if Src1 <= Src2 else 0 (signed)
	OpSeq // Dst = 1 if Src1 == Src2 else 0
	OpSne // Dst = 1 if Src1 != Src2 else 0

	OpAddI // Dst = Src1 + Imm
	OpMulI // Dst = Src1 * Imm
	OpAndI // Dst = Src1 & Imm
	OpOrI  // Dst = Src1 | Imm
	OpXorI // Dst = Src1 ^ Imm
	OpShlI // Dst = Src1 << (Imm & 63)
	OpShrI // Dst = Src1 >> (Imm & 63)
	OpSltI // Dst = 1 if Src1 < Imm else 0
	OpSeqI // Dst = 1 if Src1 == Imm else 0

	OpMovI // Dst = Imm
	OpMov  // Dst = Src1

	OpLoad  // Dst = mem[Src1 + Imm]
	OpStore // mem[Src1 + Imm] = Dst (Dst is the *value* register)

	// Floating point. Operands are float64 bit patterns.
	OpFAdd  // Dst = Src1 + Src2
	OpFSub  // Dst = Src1 - Src2
	OpFMul  // Dst = Src1 * Src2
	OpFDiv  // Dst = Src1 / Src2
	OpFNeg  // Dst = -Src1
	OpFAbs  // Dst = |Src1|
	OpFSqrt // Dst = sqrt(Src1)
	OpFSlt  // Dst = 1 if Src1 < Src2 else 0 (integer result)
	OpFSle  // Dst = 1 if Src1 <= Src2 else 0
	OpFSeq  // Dst = 1 if Src1 == Src2 else 0
	OpFMovI // Dst = float64 immediate (bits in Imm)
	OpCvtIF // Dst = float64(int64 Src1)
	OpCvtFI // Dst = int64(float64 Src1) (truncated)

	numOpcodes
)

// Class groups opcodes by the functional unit that executes them.
type Class uint8

// Functional-unit classes, matching the paper's PU configuration of two
// integer units, one floating-point unit, one branch unit, and one memory
// unit.
const (
	ClassIntALU Class = iota
	ClassIntMul
	ClassIntDiv
	ClassFPAdd
	ClassFPMul
	ClassFPDiv
	ClassMem
	ClassBranch
	numClasses
)

// NumClasses is the number of distinct functional-unit classes.
const NumClasses = int(numClasses)

// String returns a short name for the class.
func (c Class) String() string {
	switch c {
	case ClassIntALU:
		return "int"
	case ClassIntMul:
		return "imul"
	case ClassIntDiv:
		return "idiv"
	case ClassFPAdd:
		return "fadd"
	case ClassFPMul:
		return "fmul"
	case ClassFPDiv:
		return "fdiv"
	case ClassMem:
		return "mem"
	case ClassBranch:
		return "br"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

type opInfo struct {
	name    string
	srcs    int // register sources used (1 or 2); imm forms use 1
	hasImm  bool
	writes  bool // writes Dst
	class   Class
	latency int // execution latency in cycles (memory latency comes from the cache)
}

var opTable = [numOpcodes]opInfo{
	OpNop:   {"nop", 0, false, false, ClassIntALU, 1},
	OpAdd:   {"add", 2, false, true, ClassIntALU, 1},
	OpSub:   {"sub", 2, false, true, ClassIntALU, 1},
	OpMul:   {"mul", 2, false, true, ClassIntMul, 3},
	OpDiv:   {"div", 2, false, true, ClassIntDiv, 12},
	OpRem:   {"rem", 2, false, true, ClassIntDiv, 12},
	OpAnd:   {"and", 2, false, true, ClassIntALU, 1},
	OpOr:    {"or", 2, false, true, ClassIntALU, 1},
	OpXor:   {"xor", 2, false, true, ClassIntALU, 1},
	OpShl:   {"shl", 2, false, true, ClassIntALU, 1},
	OpShr:   {"shr", 2, false, true, ClassIntALU, 1},
	OpSlt:   {"slt", 2, false, true, ClassIntALU, 1},
	OpSle:   {"sle", 2, false, true, ClassIntALU, 1},
	OpSeq:   {"seq", 2, false, true, ClassIntALU, 1},
	OpSne:   {"sne", 2, false, true, ClassIntALU, 1},
	OpAddI:  {"addi", 1, true, true, ClassIntALU, 1},
	OpMulI:  {"muli", 1, true, true, ClassIntMul, 3},
	OpAndI:  {"andi", 1, true, true, ClassIntALU, 1},
	OpOrI:   {"ori", 1, true, true, ClassIntALU, 1},
	OpXorI:  {"xori", 1, true, true, ClassIntALU, 1},
	OpShlI:  {"shli", 1, true, true, ClassIntALU, 1},
	OpShrI:  {"shri", 1, true, true, ClassIntALU, 1},
	OpSltI:  {"slti", 1, true, true, ClassIntALU, 1},
	OpSeqI:  {"seqi", 1, true, true, ClassIntALU, 1},
	OpMovI:  {"movi", 0, true, true, ClassIntALU, 1},
	OpMov:   {"mov", 1, false, true, ClassIntALU, 1},
	OpLoad:  {"ld", 1, true, true, ClassMem, 1},
	OpStore: {"st", 1, true, false, ClassMem, 1},
	OpFAdd:  {"fadd", 2, false, true, ClassFPAdd, 2},
	OpFSub:  {"fsub", 2, false, true, ClassFPAdd, 2},
	OpFMul:  {"fmul", 2, false, true, ClassFPMul, 4},
	OpFDiv:  {"fdiv", 2, false, true, ClassFPDiv, 12},
	OpFNeg:  {"fneg", 1, false, true, ClassFPAdd, 2},
	OpFAbs:  {"fabs", 1, false, true, ClassFPAdd, 2},
	OpFSqrt: {"fsqrt", 1, false, true, ClassFPDiv, 12},
	OpFSlt:  {"fslt", 2, false, true, ClassFPAdd, 2},
	OpFSle:  {"fsle", 2, false, true, ClassFPAdd, 2},
	OpFSeq:  {"fseq", 2, false, true, ClassFPAdd, 2},
	OpFMovI: {"fmovi", 0, true, true, ClassFPAdd, 1},
	OpCvtIF: {"cvtif", 1, false, true, ClassFPAdd, 2},
	OpCvtFI: {"cvtfi", 1, false, true, ClassFPAdd, 2},
}

func (op Opcode) info() opInfo {
	if op >= numOpcodes {
		panic(fmt.Sprintf("ir: bad opcode %d", uint8(op)))
	}
	return opTable[op]
}

// String returns the assembler mnemonic.
func (op Opcode) String() string { return op.info().name }

// NumSrcs returns how many register sources the opcode reads (not counting
// OpStore's value register, which travels in Dst).
func (op Opcode) NumSrcs() int { return op.info().srcs }

// HasImm reports whether the opcode consumes the Imm field.
func (op Opcode) HasImm() bool { return op.info().hasImm }

// WritesDst reports whether the opcode writes its Dst register.
func (op Opcode) WritesDst() bool { return op.info().writes }

// FUClass returns the functional-unit class executing the opcode.
func (op Opcode) FUClass() Class { return op.info().class }

// Latency returns the execution latency in cycles. Loads return 1 here; the
// memory hierarchy adds cache latency on top.
func (op Opcode) Latency() int { return op.info().latency }

// Valid reports whether the opcode is in range.
func (op Opcode) Valid() bool { return op < numOpcodes }

// Uses appends the registers read by the instruction to dst and returns it.
// RegZero reads are included (they are free but still syntactic uses).
func (in Instr) Uses(dst []Reg) []Reg {
	info := in.Op.info()
	if in.Op == OpStore {
		// Store reads both the address base and the value.
		return append(dst, in.Src1, in.Dst)
	}
	switch info.srcs {
	case 1:
		dst = append(dst, in.Src1)
	case 2:
		dst = append(dst, in.Src1, in.Src2)
	}
	return dst
}

// Def returns the register written by the instruction and whether it writes
// one at all (writes to RegZero are reported as no def, matching hardware).
func (in Instr) Def() (Reg, bool) {
	if !in.Op.WritesDst() || in.Dst == RegZero {
		return RegZero, false
	}
	return in.Dst, true
}

// Float64Imm packs a float64 into the Imm field encoding used by OpFMovI.
func Float64Imm(v float64) int64 { return int64(math.Float64bits(v)) }

func float64frombits(b uint64) float64 { return math.Float64frombits(b) }

// F64 converts a register bit pattern to float64.
func F64(bits uint64) float64 { return math.Float64frombits(bits) }

// F64Bits converts a float64 to the register bit pattern.
func F64Bits(v float64) uint64 { return math.Float64bits(v) }
