package ir

import (
	"strings"
	"testing"
)

// buildLoopProg builds: main { b0: i=0; b1: if i<n ...; b2: body; b3: exit }
func buildLoopProg(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder("loop")
	f := b.Func("main")
	f.Block("entry").MovI(R(3), 0).MovI(R(4), 10).Goto("head")
	f.Block("head").Slt(R(5), R(3), R(4)).Br(R(5), "body", "exit")
	f.Block("body").AddI(R(3), R(3), 1).Goto("head")
	f.Block("exit").Halt()
	f.End()
	return b.Build()
}

func TestBuilderProducesValidProgram(t *testing.T) {
	p := buildLoopProg(t)
	if err := Validate(p); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if p.Main != 0 {
		t.Errorf("Main = %d, want 0", p.Main)
	}
	f := p.Fn(p.Main)
	if len(f.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4", len(f.Blocks))
	}
	head := f.Block(1)
	if head.Term.Kind != TermBr || head.Term.Taken != 2 || head.Term.Fall != 3 {
		t.Errorf("head terminator = %+v, want br to b2/b3", head.Term)
	}
}

func TestBuilderForwardLabels(t *testing.T) {
	b := NewBuilder("fwd")
	f := b.Func("main")
	f.Block("entry").MovI(R(3), 1).Br(R(3), "later", "mid")
	f.Block("mid").Goto("later")
	f.Block("later").Halt()
	f.End()
	p := b.Build()
	entry := p.Fn(0).Block(0)
	if entry.Term.Taken != 2 || entry.Term.Fall != 1 {
		t.Errorf("forward labels resolved to %+v", entry.Term)
	}
}

func TestBuilderDeclareFnAndCalls(t *testing.T) {
	b := NewBuilder("calls")
	callee := b.DeclareFn("helper")
	f := b.Func("main")
	f.Block("entry").MovI(R(4), 7).Call(callee, "after")
	f.Block("after").Halt()
	f.End()
	h := b.Func("helper")
	h.Block("entry").AddI(R(2), R(4), 1).Ret()
	h.End()
	p := b.Build()
	if got := p.FnByName("helper"); got == nil || got.ID != callee {
		t.Fatalf("helper not registered under declared ID %d", callee)
	}
	if p.Fn(0).Block(0).Term.Callee != callee {
		t.Errorf("call wired to %d, want %d", p.Fn(0).Block(0).Term.Callee, callee)
	}
}

func TestBuilderPanicsOnUndefinedFunction(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Build did not panic with an undefined declared function")
		}
	}()
	b := NewBuilder("bad")
	callee := b.DeclareFn("missing")
	f := b.Func("main")
	f.Block("entry").Call(callee, "after")
	f.Block("after").Halt()
	f.End()
	b.Build()
}

func TestBuilderPanicsOnUnterminatedBlock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unterminated block")
		}
	}()
	b := NewBuilder("bad")
	f := b.Func("main")
	f.Block("entry").MovI(R(3), 1)
	f.Block("next").Halt()
	_ = f
}

func TestLayoutAssignsDistinctAddresses(t *testing.T) {
	p := buildLoopProg(t)
	p.Layout()
	seen := map[uint64]bool{}
	addr := CodeBase
	for _, f := range p.Fns {
		for _, blk := range f.Blocks {
			if blk.Addr != addr {
				t.Errorf("block %d addr = %#x, want %#x", blk.ID, blk.Addr, addr)
			}
			if seen[blk.Addr] {
				t.Errorf("duplicate address %#x", blk.Addr)
			}
			seen[blk.Addr] = true
			addr += uint64(blk.Len() * InstrBytes)
		}
	}
}

func TestSuccs(t *testing.T) {
	p := buildLoopProg(t)
	f := p.Fn(0)
	cases := []struct {
		blk  BlockID
		want []BlockID
	}{
		{0, []BlockID{1}},
		{1, []BlockID{2, 3}},
		{2, []BlockID{1}},
		{3, nil},
	}
	for _, c := range cases {
		got := f.Block(c.blk).Succs(nil)
		if len(got) != len(c.want) {
			t.Errorf("Succs(b%d) = %v, want %v", c.blk, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Succs(b%d) = %v, want %v", c.blk, got, c.want)
			}
		}
	}
}

func TestInstrUsesAndDef(t *testing.T) {
	cases := []struct {
		in      Instr
		uses    []Reg
		def     Reg
		hasDef  bool
		isStore bool
	}{
		{Instr{Op: OpAdd, Dst: R(3), Src1: R(4), Src2: R(5)}, []Reg{R(4), R(5)}, R(3), true, false},
		{Instr{Op: OpAddI, Dst: R(3), Src1: R(4), Imm: 1}, []Reg{R(4)}, R(3), true, false},
		{Instr{Op: OpMovI, Dst: R(3), Imm: 1}, nil, R(3), true, false},
		{Instr{Op: OpStore, Dst: R(6), Src1: R(7), Imm: 8}, []Reg{R(7), R(6)}, 0, false, true},
		{Instr{Op: OpLoad, Dst: R(6), Src1: R(7), Imm: 8}, []Reg{R(7)}, R(6), true, false},
		{Instr{Op: OpAdd, Dst: RegZero, Src1: R(4), Src2: R(5)}, []Reg{R(4), R(5)}, 0, false, false},
	}
	for _, c := range cases {
		got := c.in.Uses(nil)
		if len(got) != len(c.uses) {
			t.Errorf("%v Uses = %v, want %v", c.in, got, c.uses)
		} else {
			for i := range got {
				if got[i] != c.uses[i] {
					t.Errorf("%v Uses = %v, want %v", c.in, got, c.uses)
				}
			}
		}
		d, ok := c.in.Def()
		if ok != c.hasDef || (ok && d != c.def) {
			t.Errorf("%v Def = %v,%v want %v,%v", c.in, d, ok, c.def, c.hasDef)
		}
	}
}

func TestRegString(t *testing.T) {
	if R(5).String() != "r5" {
		t.Errorf("R(5) = %q", R(5).String())
	}
	if F(2).String() != "f2" {
		t.Errorf("F(2) = %q", F(2).String())
	}
	if !F(0).IsFP() || R(31).IsFP() {
		t.Error("IsFP misclassifies bank boundary")
	}
}

func TestValidateCatchesBadTargets(t *testing.T) {
	p := buildLoopProg(t)
	p.Fn(0).Block(1).Term.Taken = 99
	if err := Validate(p); err == nil {
		t.Fatal("Validate accepted out-of-range branch target")
	}
}

func TestValidateCatchesDegenerateBranch(t *testing.T) {
	p := buildLoopProg(t)
	head := p.Fn(0).Block(1)
	head.Term.Fall = head.Term.Taken
	err := Validate(p)
	if err == nil {
		t.Fatal("Validate accepted a br whose taken and fall targets coincide")
	}
	if !strings.Contains(err.Error(), "degenerate branch") {
		t.Errorf("diagnostic %q does not name the degenerate branch", err)
	}
}

func TestValidateCatchesBadCallee(t *testing.T) {
	p := buildLoopProg(t)
	p.Fn(0).Block(0).Term = Terminator{Kind: TermCall, Callee: 42, Fall: 1}
	if err := Validate(p); err == nil {
		t.Fatal("Validate accepted out-of-range callee")
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := buildLoopProg(t)
	q := Clone(p)
	q.Fn(0).Block(0).Instrs[0].Imm = 999
	q.Fn(0).Block(1).Term.Taken = 3
	q.Data = append(q.Data, 1)
	if p.Fn(0).Block(0).Instrs[0].Imm == 999 {
		t.Error("clone shares instruction storage")
	}
	if p.Fn(0).Block(1).Term.Taken == 3 {
		t.Error("clone shares terminator")
	}
	if len(p.Data) != 0 {
		t.Error("clone shares data image")
	}
}

func TestFormatRoundtripsMnemonics(t *testing.T) {
	p := buildLoopProg(t)
	text := Format(p)
	for _, want := range []string{"func main", "movi r3, 0", "slt r5, r3, r4", "br r5, b2, b3", "halt"} {
		if !strings.Contains(text, want) {
			t.Errorf("Format output missing %q:\n%s", want, text)
		}
	}
}

func TestFloatImmRoundtrip(t *testing.T) {
	for _, v := range []float64{0, 1.5, -2.25, 1e300, -1e-300} {
		if got := F64(uint64(Float64Imm(v))); got != v {
			t.Errorf("roundtrip(%g) = %g", v, got)
		}
	}
}

func TestOpcodeTableConsistency(t *testing.T) {
	for op := Opcode(0); op < numOpcodes; op++ {
		if op.String() == "" {
			t.Errorf("opcode %d has no name", op)
		}
		if op.Latency() <= 0 {
			t.Errorf("opcode %v has nonpositive latency", op)
		}
		if op.FUClass() >= Class(NumClasses) {
			t.Errorf("opcode %v has bad class", op)
		}
	}
}
