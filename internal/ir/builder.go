package ir

import "fmt"

// Builder constructs a Program incrementally. It is the authoring API used by
// internal/workloads and the examples; the zero value is not usable, call
// NewBuilder.
type Builder struct {
	prog    *Program
	ids     map[string]FnID // every function name ever seen -> its ID
	defined map[string]bool // names whose definition has started
	nextID  FnID
}

// NewBuilder returns a builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		prog:    &Program{Name: name, Main: NoFn},
		ids:     make(map[string]FnID),
		defined: make(map[string]bool),
	}
}

// DeclareFn reserves a function ID for name so that calls can reference
// functions defined later (or currently being defined, for recursion).
// Declaring the same name twice returns the same ID.
func (b *Builder) DeclareFn(name string) FnID {
	if id, ok := b.ids[name]; ok {
		return id
	}
	id := b.nextID
	b.nextID++
	b.ids[name] = id
	return id
}

// Func starts defining a function and returns its builder. If the name was
// forward-declared the reserved ID is used.
func (b *Builder) Func(name string) *FuncBuilder {
	if b.defined[name] {
		panic(fmt.Sprintf("ir: function %q defined twice", name))
	}
	b.defined[name] = true
	id := b.DeclareFn(name)
	f := &Function{ID: id, Name: name, Entry: 0}
	return &FuncBuilder{b: b, fn: f}
}

// Data appends words to the program's initial data image and returns the byte
// address of the first appended word.
func (b *Builder) Data(words ...int64) uint64 {
	addr := DataBase + uint64(len(b.prog.Data))*WordBytes
	b.prog.Data = append(b.prog.Data, words...)
	return addr
}

// DataF appends float64 words to the initial data image.
func (b *Builder) DataF(vals ...float64) uint64 {
	addr := DataBase + uint64(len(b.prog.Data))*WordBytes
	for _, v := range vals {
		b.prog.Data = append(b.prog.Data, Float64Imm(v))
	}
	return addr
}

// Zeros reserves n zero-initialized words and returns their byte address.
func (b *Builder) Zeros(n int) uint64 {
	addr := DataBase + uint64(len(b.prog.Data))*WordBytes
	b.prog.Data = append(b.prog.Data, make([]int64, n)...)
	return addr
}

// Build finalizes the program: every declared function must be defined, main
// must exist, the program is validated and laid out. Build panics on misuse
// (workloads are static data; a bad workload is a programming error).
func (b *Builder) Build() *Program {
	for name := range b.ids {
		if !b.defined[name] {
			panic(fmt.Sprintf("ir: function %q declared but never defined", name))
		}
	}
	if main := b.prog.FnByName("main"); main != nil {
		b.prog.Main = main.ID
	}
	if b.prog.Main == NoFn {
		panic("ir: program has no main function")
	}
	// Function IDs were handed out interleaved with pending declarations;
	// re-sort the slice so Fns[id].ID == id.
	fns := make([]*Function, len(b.prog.Fns))
	for _, f := range b.prog.Fns {
		if int(f.ID) >= len(fns) || fns[f.ID] != nil {
			panic(fmt.Sprintf("ir: inconsistent function IDs for %q", f.Name))
		}
		fns[f.ID] = f
	}
	b.prog.Fns = fns
	if err := Validate(b.prog); err != nil {
		panic(fmt.Sprintf("ir: built an invalid program: %v", err))
	}
	b.prog.Layout()
	return b.prog
}

// FuncBuilder accumulates the blocks of one function.
type FuncBuilder struct {
	b      *Builder
	fn     *Function
	labels map[string]BlockID
	fixups []fixup
	cur    *BlockBuilder
	done   bool
}

type fixup struct {
	block BlockID
	field int // 0 = Taken, 1 = Fall
	label string
}

// Label reserves (or retrieves) the block ID for a named block, allowing
// forward branches.
func (fb *FuncBuilder) Label(name string) BlockID {
	if fb.labels == nil {
		fb.labels = make(map[string]BlockID)
	}
	if id, ok := fb.labels[name]; ok {
		return id
	}
	id := BlockID(-2 - len(fb.labels)) // placeholder, patched in End
	fb.labels[name] = id
	return id
}

// Block starts a new basic block, optionally bound to a label name
// (empty name = anonymous). The previous block must have been terminated.
func (fb *FuncBuilder) Block(name string) *BlockBuilder {
	if fb.cur != nil && !fb.cur.terminated {
		panic(fmt.Sprintf("ir: function %q: starting block %q before terminating previous block", fb.fn.Name, name))
	}
	id := BlockID(len(fb.fn.Blocks))
	blk := &Block{ID: id}
	fb.fn.Blocks = append(fb.fn.Blocks, blk)
	if name != "" {
		if fb.labels == nil {
			fb.labels = make(map[string]BlockID)
		}
		if old, ok := fb.labels[name]; ok && old >= 0 {
			panic(fmt.Sprintf("ir: function %q: duplicate block label %q", fb.fn.Name, name))
		}
		fb.labels[name] = id
	}
	fb.cur = &BlockBuilder{fb: fb, blk: blk}
	return fb.cur
}

func (fb *FuncBuilder) resolve(label string) BlockID {
	if id, ok := fb.labels[label]; ok && id >= 0 {
		return id
	}
	return NoBlock
}

// End finishes the function: all label references are patched and the
// function is registered with the program builder.
func (fb *FuncBuilder) End() FnID {
	if fb.done {
		panic(fmt.Sprintf("ir: function %q ended twice", fb.fn.Name))
	}
	if fb.cur == nil {
		panic(fmt.Sprintf("ir: function %q has no blocks", fb.fn.Name))
	}
	if !fb.cur.terminated {
		panic(fmt.Sprintf("ir: function %q: last block is unterminated", fb.fn.Name))
	}
	for _, fx := range fb.fixups {
		id := fb.resolve(fx.label)
		if id == NoBlock {
			panic(fmt.Sprintf("ir: function %q: undefined label %q", fb.fn.Name, fx.label))
		}
		t := &fb.fn.Blocks[fx.block].Term
		if fx.field == 0 {
			t.Taken = id
		} else {
			t.Fall = id
		}
	}
	fb.done = true
	fb.b.prog.Fns = append(fb.b.prog.Fns, fb.fn)
	return fb.fn.ID
}

// BlockBuilder appends instructions to one basic block.
type BlockBuilder struct {
	fb         *FuncBuilder
	blk        *Block
	terminated bool
}

func (bb *BlockBuilder) emit(in Instr) *BlockBuilder {
	if bb.terminated {
		panic("ir: emitting into a terminated block")
	}
	bb.blk.Instrs = append(bb.blk.Instrs, in)
	return bb
}

// Op3 emits a three-register instruction.
func (bb *BlockBuilder) Op3(op Opcode, dst, s1, s2 Reg) *BlockBuilder {
	return bb.emit(Instr{Op: op, Dst: dst, Src1: s1, Src2: s2})
}

// OpI emits a register-immediate instruction.
func (bb *BlockBuilder) OpI(op Opcode, dst, s1 Reg, imm int64) *BlockBuilder {
	return bb.emit(Instr{Op: op, Dst: dst, Src1: s1, Imm: imm})
}

// Convenience emitters for the common opcodes. Each returns the receiver so
// straight-line code chains fluently.

func (bb *BlockBuilder) Add(d, a, b Reg) *BlockBuilder  { return bb.Op3(OpAdd, d, a, b) }
func (bb *BlockBuilder) Sub(d, a, b Reg) *BlockBuilder  { return bb.Op3(OpSub, d, a, b) }
func (bb *BlockBuilder) Mul(d, a, b Reg) *BlockBuilder  { return bb.Op3(OpMul, d, a, b) }
func (bb *BlockBuilder) Div(d, a, b Reg) *BlockBuilder  { return bb.Op3(OpDiv, d, a, b) }
func (bb *BlockBuilder) Rem(d, a, b Reg) *BlockBuilder  { return bb.Op3(OpRem, d, a, b) }
func (bb *BlockBuilder) And(d, a, b Reg) *BlockBuilder  { return bb.Op3(OpAnd, d, a, b) }
func (bb *BlockBuilder) Or(d, a, b Reg) *BlockBuilder   { return bb.Op3(OpOr, d, a, b) }
func (bb *BlockBuilder) Xor(d, a, b Reg) *BlockBuilder  { return bb.Op3(OpXor, d, a, b) }
func (bb *BlockBuilder) Shl(d, a, b Reg) *BlockBuilder  { return bb.Op3(OpShl, d, a, b) }
func (bb *BlockBuilder) Shr(d, a, b Reg) *BlockBuilder  { return bb.Op3(OpShr, d, a, b) }
func (bb *BlockBuilder) Slt(d, a, b Reg) *BlockBuilder  { return bb.Op3(OpSlt, d, a, b) }
func (bb *BlockBuilder) Sle(d, a, b Reg) *BlockBuilder  { return bb.Op3(OpSle, d, a, b) }
func (bb *BlockBuilder) Seq(d, a, b Reg) *BlockBuilder  { return bb.Op3(OpSeq, d, a, b) }
func (bb *BlockBuilder) Sne(d, a, b Reg) *BlockBuilder  { return bb.Op3(OpSne, d, a, b) }
func (bb *BlockBuilder) FAdd(d, a, b Reg) *BlockBuilder { return bb.Op3(OpFAdd, d, a, b) }
func (bb *BlockBuilder) FSub(d, a, b Reg) *BlockBuilder { return bb.Op3(OpFSub, d, a, b) }
func (bb *BlockBuilder) FMul(d, a, b Reg) *BlockBuilder { return bb.Op3(OpFMul, d, a, b) }
func (bb *BlockBuilder) FDiv(d, a, b Reg) *BlockBuilder { return bb.Op3(OpFDiv, d, a, b) }
func (bb *BlockBuilder) FSlt(d, a, b Reg) *BlockBuilder { return bb.Op3(OpFSlt, d, a, b) }
func (bb *BlockBuilder) FSle(d, a, b Reg) *BlockBuilder { return bb.Op3(OpFSle, d, a, b) }
func (bb *BlockBuilder) FSeq(d, a, b Reg) *BlockBuilder { return bb.Op3(OpFSeq, d, a, b) }

func (bb *BlockBuilder) FNeg(d, a Reg) *BlockBuilder  { return bb.Op3(OpFNeg, d, a, RegZero) }
func (bb *BlockBuilder) FAbs(d, a Reg) *BlockBuilder  { return bb.Op3(OpFAbs, d, a, RegZero) }
func (bb *BlockBuilder) FSqrt(d, a Reg) *BlockBuilder { return bb.Op3(OpFSqrt, d, a, RegZero) }
func (bb *BlockBuilder) CvtIF(d, a Reg) *BlockBuilder { return bb.Op3(OpCvtIF, d, a, RegZero) }
func (bb *BlockBuilder) CvtFI(d, a Reg) *BlockBuilder { return bb.Op3(OpCvtFI, d, a, RegZero) }
func (bb *BlockBuilder) Mov(d, a Reg) *BlockBuilder   { return bb.Op3(OpMov, d, a, RegZero) }

func (bb *BlockBuilder) AddI(d, a Reg, imm int64) *BlockBuilder { return bb.OpI(OpAddI, d, a, imm) }
func (bb *BlockBuilder) MulI(d, a Reg, imm int64) *BlockBuilder { return bb.OpI(OpMulI, d, a, imm) }
func (bb *BlockBuilder) AndI(d, a Reg, imm int64) *BlockBuilder { return bb.OpI(OpAndI, d, a, imm) }
func (bb *BlockBuilder) OrI(d, a Reg, imm int64) *BlockBuilder  { return bb.OpI(OpOrI, d, a, imm) }
func (bb *BlockBuilder) XorI(d, a Reg, imm int64) *BlockBuilder { return bb.OpI(OpXorI, d, a, imm) }
func (bb *BlockBuilder) ShlI(d, a Reg, imm int64) *BlockBuilder { return bb.OpI(OpShlI, d, a, imm) }
func (bb *BlockBuilder) ShrI(d, a Reg, imm int64) *BlockBuilder { return bb.OpI(OpShrI, d, a, imm) }
func (bb *BlockBuilder) SltI(d, a Reg, imm int64) *BlockBuilder { return bb.OpI(OpSltI, d, a, imm) }
func (bb *BlockBuilder) SeqI(d, a Reg, imm int64) *BlockBuilder { return bb.OpI(OpSeqI, d, a, imm) }

// MovI loads an integer constant.
func (bb *BlockBuilder) MovI(d Reg, imm int64) *BlockBuilder {
	return bb.emit(Instr{Op: OpMovI, Dst: d, Imm: imm})
}

// FMovI loads a float64 constant.
func (bb *BlockBuilder) FMovI(d Reg, v float64) *BlockBuilder {
	return bb.emit(Instr{Op: OpFMovI, Dst: d, Imm: Float64Imm(v)})
}

// Load emits Dst = mem[base + off].
func (bb *BlockBuilder) Load(d, base Reg, off int64) *BlockBuilder {
	return bb.emit(Instr{Op: OpLoad, Dst: d, Src1: base, Imm: off})
}

// Store emits mem[base + off] = val.
func (bb *BlockBuilder) Store(val, base Reg, off int64) *BlockBuilder {
	return bb.emit(Instr{Op: OpStore, Dst: val, Src1: base, Imm: off})
}

// Nop emits a no-op (useful to pad task sizes in tests).
func (bb *BlockBuilder) Nop() *BlockBuilder { return bb.emit(Instr{Op: OpNop}) }

func (bb *BlockBuilder) terminate(t Terminator) {
	if bb.terminated {
		panic("ir: block terminated twice")
	}
	bb.blk.Term = t
	bb.terminated = true
}

func (bb *BlockBuilder) target(label string, field int) BlockID {
	id := bb.fb.resolve(label)
	if id == NoBlock {
		bb.fb.fixups = append(bb.fb.fixups, fixup{block: bb.blk.ID, field: field, label: label})
		return NoBlock
	}
	return id
}

// Goto ends the block with an unconditional jump to the labelled block.
func (bb *BlockBuilder) Goto(label string) {
	bb.terminate(Terminator{Kind: TermGoto, Taken: bb.target(label, 0)})
}

// Br ends the block with a conditional branch: to taken when cond != 0, else
// to fall.
func (bb *BlockBuilder) Br(cond Reg, taken, fall string) {
	t := Terminator{Kind: TermBr, Cond: cond}
	t.Taken = bb.target(taken, 0)
	t.Fall = bb.target(fall, 1)
	bb.terminate(t)
}

// Call ends the block with a call to fn, continuing at the labelled block on
// return.
func (bb *BlockBuilder) Call(fn FnID, ret string) {
	t := Terminator{Kind: TermCall, Callee: fn}
	t.Fall = bb.target(ret, 1)
	bb.terminate(t)
}

// Ret ends the block with a function return.
func (bb *BlockBuilder) Ret() { bb.terminate(Terminator{Kind: TermRet}) }

// Halt ends the block by stopping the program.
func (bb *BlockBuilder) Halt() { bb.terminate(Terminator{Kind: TermHalt}) }
