// Package ir defines the intermediate representation that the whole
// reproduction is built on: a small RISC-like register machine with an
// explicit control flow graph.
//
// Programs are collections of functions; functions are collections of basic
// blocks; basic blocks hold straight-line instructions and end in exactly one
// terminator (goto, conditional branch, call, return, or halt). Branch
// targets are block identifiers, never raw addresses, so the CFG is always
// explicit and analyses (internal/cfganal, internal/dataflow) and the task
// selector (internal/core) never have to reconstruct it.
//
// The machine has 64 general registers of 64 bits each. By convention
// registers 0-31 hold integers (register 0 is hardwired to zero) and
// registers 32-63 hold float64 bit patterns, but the hardware does not
// enforce the split; floating-point opcodes simply reinterpret the bits.
package ir

import "fmt"

// Reg names one of the 64 architectural registers.
type Reg uint8

// Register file geometry and conventional assignments.
const (
	// NumRegs is the total number of architectural registers.
	NumRegs = 64
	// RegZero is hardwired to zero; writes to it are discarded.
	RegZero Reg = 0
	// RegSP is the conventional stack pointer (software convention only).
	RegSP Reg = 1
	// RegRV is the conventional integer return-value register.
	RegRV Reg = 2
	// RegArg0 is the first conventional argument register; arguments occupy
	// RegArg0..RegArg0+7.
	RegArg0 Reg = 4
	// FP0 is the first conventional floating-point register.
	FP0 Reg = 32
)

// R returns the i'th integer register. It panics if i is out of range.
func R(i int) Reg {
	if i < 0 || i >= int(FP0) {
		panic(fmt.Sprintf("ir.R(%d): integer register out of range", i))
	}
	return Reg(i)
}

// F returns the i'th floating-point register. It panics if i is out of range.
func F(i int) Reg {
	if i < 0 || i >= NumRegs-int(FP0) {
		panic(fmt.Sprintf("ir.F(%d): fp register out of range", i))
	}
	return FP0 + Reg(i)
}

// IsFP reports whether r is in the conventional floating-point bank.
func (r Reg) IsFP() bool { return r >= FP0 }

// String returns the assembler name of the register (r0..r31, f0..f31).
func (r Reg) String() string {
	if r.IsFP() {
		return fmt.Sprintf("f%d", int(r-FP0))
	}
	return fmt.Sprintf("r%d", int(r))
}

// BlockID identifies a basic block within its function.
type BlockID int

// NoBlock is the zero-ish sentinel for "no successor".
const NoBlock BlockID = -1

// FnID identifies a function within its program.
type FnID int

// NoFn is the sentinel for "no function".
const NoFn FnID = -1

// Instr is one straight-line (non-control-transfer) instruction. Control
// transfer lives exclusively in Block.Term. The meaning of the fields depends
// on the opcode; see the Opcode constants.
type Instr struct {
	Op   Opcode
	Dst  Reg   // destination register (OpStore uses it as the value source)
	Src1 Reg   // first source register
	Src2 Reg   // second source register
	Imm  int64 // immediate: constant for OpMovI/*I forms, byte offset for loads/stores
}

// String renders the instruction in assembler syntax.
func (in Instr) String() string {
	switch in.Op {
	case OpNop:
		return "nop"
	case OpMovI:
		return fmt.Sprintf("movi %s, %d", in.Dst, in.Imm)
	case OpFMovI:
		return fmt.Sprintf("fmovi %s, %g", in.Dst, immFloat(in.Imm))
	case OpLoad:
		return fmt.Sprintf("ld %s, %d(%s)", in.Dst, in.Imm, in.Src1)
	case OpStore:
		return fmt.Sprintf("st %s, %d(%s)", in.Dst, in.Imm, in.Src1)
	}
	if in.Op.HasImm() {
		return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Dst, in.Src1, in.Imm)
	}
	if in.Op.NumSrcs() == 1 {
		return fmt.Sprintf("%s %s, %s", in.Op, in.Dst, in.Src1)
	}
	return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Dst, in.Src1, in.Src2)
}

// TermKind discriminates the block terminator.
type TermKind uint8

// Terminator kinds.
const (
	// TermGoto transfers unconditionally to Taken.
	TermGoto TermKind = iota
	// TermBr transfers to Taken when register Cond is nonzero, else to Fall.
	TermBr
	// TermCall invokes function Callee and continues at Fall on return.
	TermCall
	// TermRet returns from the current function.
	TermRet
	// TermHalt stops the program. Only valid in the entry function.
	TermHalt
)

// String returns the assembler mnemonic of the terminator kind.
func (k TermKind) String() string {
	switch k {
	case TermGoto:
		return "goto"
	case TermBr:
		return "br"
	case TermCall:
		return "call"
	case TermRet:
		return "ret"
	case TermHalt:
		return "halt"
	}
	return fmt.Sprintf("TermKind(%d)", uint8(k))
}

// Terminator is the single control-transfer operation ending a basic block.
type Terminator struct {
	Kind   TermKind
	Cond   Reg     // TermBr: taken when nonzero
	Taken  BlockID // TermGoto/TermBr target
	Fall   BlockID // TermBr fall-through; TermCall return-to block
	Callee FnID    // TermCall only
}

// IsCT reports whether the terminator is a dynamic control-transfer
// instruction (everything except a pure fall-through goto to the next block
// still counts: in this IR every terminator except Halt is a real control
// transfer instruction occupying an instruction slot).
func (t Terminator) IsCT() bool { return t.Kind != TermHalt }

// Block is a basic block: a maximal straight-line instruction sequence with a
// single entry (the first instruction) and a single terminator.
type Block struct {
	ID     BlockID
	Instrs []Instr
	Term   Terminator

	// Addr is the byte address of the first instruction once the program has
	// been laid out (see Program.Layout).
	Addr uint64
}

// Len returns the number of dynamic instructions the block executes,
// including its terminator (halt counts as one instruction too).
func (b *Block) Len() int { return len(b.Instrs) + 1 }

// Succs appends the static successor block IDs of b to dst and returns it.
// A call's successor is its return-to block (the callee body is not a CFG
// successor, matching the paper's treatment of calls as task terminators).
// Ret and Halt have no successors.
func (b *Block) Succs(dst []BlockID) []BlockID {
	switch b.Term.Kind {
	case TermGoto:
		return append(dst, b.Term.Taken)
	case TermBr:
		if b.Term.Taken == b.Term.Fall {
			return append(dst, b.Term.Taken)
		}
		return append(dst, b.Term.Taken, b.Term.Fall)
	case TermCall:
		return append(dst, b.Term.Fall)
	}
	return dst
}

// Function is a single-entry procedure.
type Function struct {
	ID     FnID
	Name   string
	Entry  BlockID
	Blocks []*Block
}

// Block returns the block with the given ID. It panics on a bad ID so that
// analysis bugs fail loudly rather than corrupting results.
func (f *Function) Block(id BlockID) *Block {
	if id < 0 || int(id) >= len(f.Blocks) {
		panic(fmt.Sprintf("ir: function %q has no block %d", f.Name, id))
	}
	return f.Blocks[id]
}

// NumInstrs returns the static instruction count of the function, terminators
// included.
func (f *Function) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += b.Len()
	}
	return n
}

// Program is a complete executable: functions plus an initial data image.
type Program struct {
	Name string
	Fns  []*Function
	Main FnID

	// Data is the initial contents of memory starting at DataBase, in 64-bit
	// words. Memory outside the image reads as zero.
	Data []int64

	laidOut bool
}

// Memory map constants shared by the emulator and the simulator.
const (
	// DataBase is the byte address where Program.Data is loaded.
	DataBase uint64 = 1 << 16
	// StackBase is the conventional initial stack pointer (stack grows down).
	StackBase uint64 = 1 << 24
	// CodeBase is the byte address of the first instruction after layout.
	CodeBase uint64 = 1 << 12
	// InstrBytes is the encoded size of every instruction.
	InstrBytes = 4
	// WordBytes is the size of a memory word (all loads/stores are 8 bytes).
	WordBytes = 8
)

// Fn returns the function with the given ID, panicking on a bad ID.
func (p *Program) Fn(id FnID) *Function {
	if id < 0 || int(id) >= len(p.Fns) {
		panic(fmt.Sprintf("ir: program %q has no function %d", p.Name, id))
	}
	return p.Fns[id]
}

// FnByName returns the function with the given name, or nil.
func (p *Program) FnByName(name string) *Function {
	for _, f := range p.Fns {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// NumInstrs returns the static instruction count of the whole program.
func (p *Program) NumInstrs() int {
	n := 0
	for _, f := range p.Fns {
		n += f.NumInstrs()
	}
	return n
}

// Layout assigns a code address to every basic block (functions in order,
// blocks in order, InstrBytes per instruction, terminators included).
// Layout is idempotent.
func (p *Program) Layout() {
	addr := CodeBase
	for _, f := range p.Fns {
		for _, b := range f.Blocks {
			b.Addr = addr
			addr += uint64(b.Len() * InstrBytes)
		}
	}
	p.laidOut = true
}

// LaidOut reports whether Layout has run.
func (p *Program) LaidOut() bool { return p.laidOut }

func immFloat(bits int64) float64 {
	return float64frombits(uint64(bits))
}
