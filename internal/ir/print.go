package ir

import (
	"fmt"
	"strings"
)

// Format renders the whole program in the textual assembler syntax accepted
// by internal/asm.
func Format(p *Program) string {
	var sb strings.Builder
	for i, f := range p.Fns {
		if i > 0 {
			sb.WriteByte('\n')
		}
		FormatFn(&sb, p, f)
	}
	return sb.String()
}

// FormatFn writes one function in assembler syntax.
func FormatFn(sb *strings.Builder, p *Program, f *Function) {
	fmt.Fprintf(sb, "func %s {\n", f.Name)
	for _, b := range f.Blocks {
		fmt.Fprintf(sb, "b%d:\n", b.ID)
		for _, in := range b.Instrs {
			fmt.Fprintf(sb, "\t%s\n", in)
		}
		fmt.Fprintf(sb, "\t%s\n", FormatTerm(p, b.Term))
	}
	sb.WriteString("}\n")
}

// FormatTerm renders a terminator in assembler syntax.
func FormatTerm(p *Program, t Terminator) string {
	switch t.Kind {
	case TermGoto:
		return fmt.Sprintf("goto b%d", t.Taken)
	case TermBr:
		return fmt.Sprintf("br %s, b%d, b%d", t.Cond, t.Taken, t.Fall)
	case TermCall:
		name := fmt.Sprintf("fn%d", t.Callee)
		if p != nil && t.Callee >= 0 && int(t.Callee) < len(p.Fns) {
			name = p.Fns[t.Callee].Name
		}
		return fmt.Sprintf("call %s, b%d", name, t.Fall)
	case TermRet:
		return "ret"
	case TermHalt:
		return "halt"
	}
	return fmt.Sprintf("term(%d)", uint8(t.Kind))
}
