// Benchmark harness: one testing.B target per table and figure in the
// paper's evaluation, plus the ablations DESIGN.md calls out and component
// micro-benchmarks. Each benchmark regenerates its artifact and reports the
// headline numbers as custom metrics.
//
// By default the experiment benchmarks run on a six-benchmark core subset so
// `go test -bench=.` stays fast; pass -full to sweep all 18 workloads (what
// cmd/msreport does).
package multiscalar_test

import (
	"flag"
	"fmt"
	"testing"

	"multiscalar"
	"multiscalar/internal/core"
	"multiscalar/internal/emu"
	"multiscalar/internal/experiment"
	"multiscalar/internal/sim"
	"multiscalar/internal/workloads"
)

var fullSweep = flag.Bool("full", false, "run experiment benchmarks over all 18 workloads")

// coreSubset spans the paper's spectrum: branchy integer (go), hash loop
// with memory dependences (compress), loop-parallel integer (ijpeg), regular
// FP (tomcatv, swim), and giant-basic-block FP (fpppp).
func benchNames() []string {
	if *fullSweep {
		return workloads.Names()
	}
	return []string{"go", "compress", "ijpeg", "tomcatv", "swim", "fpppp"}
}

// geoGain averages the per-suite geometric-mean IPC ratios of a variant over
// basic-block tasks (1.0 = no gain).
func geoGain(cells []experiment.Fig5Cell, v experiment.Variant) float64 {
	sums := experiment.Summarize(cells)
	total, n := 0.0, 0
	for _, s := range sums {
		if s.Variant == v {
			total += s.GeoMean
			n++
		}
	}
	if n == 0 {
		return 1
	}
	return total / float64(n)
}

// BenchmarkFigure5 regenerates one panel of Figure 5 per sub-benchmark:
// {4,8} PUs × {out-of-order, in-order}, reporting the mean IPC gain of the
// control-flow and data-dependence heuristics over basic-block tasks.
func BenchmarkFigure5(b *testing.B) {
	for _, pus := range []int{4, 8} {
		b.Run(fmt.Sprintf("%dPU", pus), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := experiment.NewRunner()
				cells, err := experiment.Figure5(r, []int{pus}, benchNames())
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(100*(geoGain(cells, experiment.CF)-1), "cf-gain-%")
				b.ReportMetric(100*(geoGain(cells, experiment.DD)-1), "dd-gain-%")
			}
		})
	}
}

// BenchmarkTable1 regenerates Table 1 (task sizes, prediction accuracies,
// window spans on 8 PUs), reporting the mean data-dependence window span.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.NewRunner()
		rows, err := experiment.Table1(r, benchNames())
		if err != nil {
			b.Fatal(err)
		}
		var span, size float64
		for _, row := range rows {
			span += row.DDWinSpan
			size += row.DDDynInst
		}
		b.ReportMetric(span/float64(len(rows)), "dd-win-span")
		b.ReportMetric(size/float64(len(rows)), "dd-task-size")
	}
}

// BenchmarkAblationTargets sweeps the hardware target limit N.
func BenchmarkAblationTargets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.NewRunner()
		if _, err := experiment.AblationTargets(r, []string{"go", "compress"}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSync compares the synchronization table on/off.
func BenchmarkAblationSync(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.NewRunner()
		rows, err := experiment.AblationSync(r, []string{"compress", "wave5"})
		if err != nil {
			b.Fatal(err)
		}
		_ = rows
	}
}

// BenchmarkAblationRing sweeps register ring bandwidth.
func BenchmarkAblationRing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.NewRunner()
		if _, err := experiment.AblationRing(r, []string{"tomcatv"}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBanks sweeps the L1 D-cache bank count.
func BenchmarkAblationBanks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.NewRunner()
		if _, err := experiment.AblationBanks(r, []string{"tomcatv", "wave5"}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationGreedy compares greedy vs first-fit feasible-task growth.
func BenchmarkAblationGreedy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.NewRunner()
		if _, err := experiment.AblationGreedy(r, []string{"go", "ijpeg"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationThresh sweeps CALL_THRESH / LOOP_THRESH.
func BenchmarkAblationThresh(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.NewRunner()
		if _, err := experiment.AblationThresh(r, []string{"compress"}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// Component micro-benchmarks.

// BenchmarkSelect measures task selection throughput per heuristic.
func BenchmarkSelect(b *testing.B) {
	for _, h := range []core.Heuristic{core.BasicBlock, core.ControlFlow, core.DataDependence} {
		b.Run(h.String(), func(b *testing.B) {
			w, err := workloads.ByName("go")
			if err != nil {
				b.Fatal(err)
			}
			prog := w.Build()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Select(prog, core.Options{Heuristic: h}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEmulator measures sequential functional simulation speed.
func BenchmarkEmulator(b *testing.B) {
	w, err := workloads.ByName("tomcatv")
	if err != nil {
		b.Fatal(err)
	}
	prog := w.Build()
	var instrs uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := emu.New(prog)
		if err := m.Run(5_000_000); err != nil {
			b.Fatal(err)
		}
		instrs = m.Count
	}
	b.ReportMetric(float64(instrs)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// BenchmarkSimulator measures cycle-level simulation speed on the paper's
// 8-PU machine.
func BenchmarkSimulator(b *testing.B) {
	w, err := workloads.ByName("tomcatv")
	if err != nil {
		b.Fatal(err)
	}
	part, err := core.Select(w.Build(), core.Options{Heuristic: core.ControlFlow})
	if err != nil {
		b.Fatal(err)
	}
	var instrs uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(part, sim.DefaultConfig(8))
		if err != nil {
			b.Fatal(err)
		}
		instrs = res.Instrs
	}
	b.ReportMetric(float64(instrs)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// BenchmarkPublicAPI exercises the facade end to end (what the quickstart
// example does), keeping the documented flow compiling and fast.
func BenchmarkPublicAPI(b *testing.B) {
	w, err := multiscalar.WorkloadByName("ijpeg")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		part, err := multiscalar.Select(w.Build(), multiscalar.Options{Heuristic: multiscalar.ControlFlow})
		if err != nil {
			b.Fatal(err)
		}
		res, err := multiscalar.Simulate(part, multiscalar.DefaultConfig(4))
		if err != nil {
			b.Fatal(err)
		}
		if res.IPC <= 0 {
			b.Fatal("nonpositive IPC")
		}
	}
}
