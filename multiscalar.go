// Package multiscalar is a from-scratch reproduction of "Task Selection for
// a Multiscalar Processor" (T. N. Vijaykumar and G. S. Sohi, MICRO-31,
// 1998): the compiler task-selection heuristics that partition a sequential
// program into speculative tasks, and the cycle-level Multiscalar machine
// they were evaluated on.
//
// The library is organized as a pipeline:
//
//	program  := multiscalar.NewBuilder("name")...Build()   // or ParseAsm
//	partition, _ := multiscalar.Select(program, multiscalar.Options{
//		Heuristic: multiscalar.ControlFlow,
//	})
//	result, _ := multiscalar.Simulate(partition, multiscalar.DefaultConfig(4))
//	fmt.Println(result.IPC)
//
// Programs are written in a small RISC-like IR with an explicit CFG (package
// internal/ir), partitioned into tasks by the paper's basic-block,
// control-flow, and data-dependence heuristics with the task-size heuristic
// as an option (internal/core), and timed on a simulator with per-PU
// pipelines, gshare and path-based predictors, a register communication
// ring, and ARB-based memory dependence speculation (internal/sim).
//
// The paper's SPEC95 evaluation is reproduced by the 18 synthetic workloads
// in Workloads and regenerated end to end by Figure5 and Table1; see
// EXPERIMENTS.md for paper-vs-measured numbers. Experiment grids execute on
// a parallel, cache-backed engine (internal/grid, exported as Grid): jobs
// are deduplicated single-flight, scheduled across a bounded worker pool,
// and optionally persisted to a content-addressed on-disk cache so warm
// reruns skip simulation entirely.
//
// Observability lives in internal/obs (exported here as Tracer, Metrics, and
// friends): SimulateObserved streams cycle-stamped events to a Tracer and
// populates a Metrics registry without perturbing the simulated machine — an
// observed run returns a Result identical to Simulate's — and
// WriteChromeTrace exports collected events as a Chrome trace-event /
// Perfetto JSON file. See DESIGN.md §9.
//
// The whole pipeline is also servable over HTTP (internal/serve, exported as
// Server): partition, simulate, and experiment endpoints on a shared grid
// engine with request coalescing, load shedding, per-request deadlines, and
// graceful drain. The cmd/mssrv binary is a thin main around NewServer; see
// DESIGN.md §10.
//
// Sweeps fan out across processes with the distributed grid (internal/dist,
// exported with the Dist prefix): a work-stealing shard scheduler plugs into
// GridOptions.Dispatcher, DistWorker processes pull jobs over HTTP and
// publish results through a tiered cache (in-memory LRU → disk → remote
// peer), and lost workers are reassigned by lease expiry. Output stays
// byte-identical to a serial run. See DESIGN.md §12.
//
// Every hop of that distributed machinery can be traced end to end with the
// span layer (internal/obs/span, exported with the Span prefix): a
// SpanTracer propagates trace context over HTTP and the dist wire protocol,
// retains finished traces in a flight recorder, serves a live /debug
// introspection surface (RegisterTraceDebug), and exports any trace as
// Chrome trace-event JSON with one track per process (WriteSpanTrace). A nil
// tracer is inert, so an untraced run is byte-identical. See DESIGN.md §13.
//
// Beyond the 18 fixed benchmarks, Generate builds property-based workloads
// from a seed and shape parameters (internal/gen, exported with the Gen
// prefix): every generated program validates, verifies clean, and halts on
// the emulator, and the same seed yields byte-identical programs on every
// machine. Canonical gen: names make generated programs first-class
// workloads everywhere a benchmark name is accepted. Selection strategy is
// pluggable through the policy registry (RegisterPolicy, Options.Policy):
// registered policies — greedy, roundrobin, knapsack in internal/policy —
// replace the heuristics' growth decisions while the selector keeps every
// partition invariant intact. See DESIGN.md §14.
//
// Long-running sweeps become durable async jobs (internal/jobs, exported
// with the Jobs prefix): content-addressed specs executed by a bounded
// runner pool on the shared grid, journaled to disk so a restarted server
// resumes queued work and serves finished results from the terminal cache,
// scheduled across tenants by weighted fair queueing, and routable across
// replicas by a consistent-hash ring. ServerConfig.Jobs mounts the whole
// surface at /v1/jobs. See DESIGN.md §15.
package multiscalar

import (
	"context"
	"io"
	"net/http"
	"time"

	"multiscalar/internal/asm"
	"multiscalar/internal/core"
	"multiscalar/internal/dist"
	"multiscalar/internal/emu"
	"multiscalar/internal/experiment"
	"multiscalar/internal/gen"

	// Importing the facade registers the built-in policy zoo (greedy,
	// roundrobin, knapsack); Options.Policy accepts any PolicyNames entry.
	"multiscalar/internal/grid"
	"multiscalar/internal/ir"
	"multiscalar/internal/jobs"
	"multiscalar/internal/obs"
	"multiscalar/internal/obs/span"
	_ "multiscalar/internal/policy"
	"multiscalar/internal/serve"
	"multiscalar/internal/sim"
	"multiscalar/internal/verify"
	"multiscalar/internal/workloads"
)

// Program construction.
type (
	// Program is an executable in the reproduction's IR.
	Program = ir.Program
	// Builder constructs programs; see NewBuilder.
	Builder = ir.Builder
	// Reg names an architectural register (R(i) integer, F(i) float).
	Reg = ir.Reg
)

// NewBuilder returns a builder for a new program.
func NewBuilder(name string) *Builder { return ir.NewBuilder(name) }

// R returns the i'th integer register; F the i'th floating-point register.
func R(i int) Reg { return ir.R(i) }

// F returns the i'th floating-point register.
func F(i int) Reg { return ir.F(i) }

// ParseAsm assembles the textual IR syntax (the same syntax FormatProgram
// emits) into a program.
func ParseAsm(name, src string) (*Program, error) { return asm.Parse(name, src) }

// FormatProgram renders a program in assembler syntax.
func FormatProgram(p *Program) string { return ir.Format(p) }

// Task selection (the paper's contribution).
type (
	// Partition is a complete task selection for a program.
	Partition = core.Partition
	// Task is one static Multiscalar task.
	Task = core.Task
	// Options configures Select.
	Options = core.Options
	// Heuristic chooses the selection strategy.
	Heuristic = core.Heuristic
	// TaskExec describes one dynamic task instance (see WalkTasks).
	TaskExec = core.TaskExec
)

// The task-selection strategies evaluated in the paper.
const (
	// BasicBlock makes every basic block a task (the paper's baseline).
	BasicBlock = core.BasicBlock
	// ControlFlow grows multi-block tasks bounded by terminal nodes/edges
	// and the hardware target limit.
	ControlFlow = core.ControlFlow
	// DataDependence additionally steers growth along profiled def-use
	// chains.
	DataDependence = core.DataDependence
)

// Select partitions a program into Multiscalar tasks. The input program is
// never mutated.
func Select(p *Program, opts Options) (*Partition, error) { return core.Select(p, opts) }

// WalkTasks executes the partitioned program sequentially, invoking visit
// for every dynamic task instance in program order — the measurement
// backbone behind Table 1.
func WalkTasks(part *Partition, limit uint64, visit func(TaskExec)) error {
	return core.WalkTasks(part, limit, visit)
}

// Simulation.
type (
	// Config describes a simulated Multiscalar machine.
	Config = sim.Config
	// Result is the outcome of one simulation.
	Result = sim.Result
)

// DefaultConfig returns the paper's §4.2 machine for the given PU count.
func DefaultConfig(numPUs int) Config { return sim.DefaultConfig(numPUs) }

// Simulate runs the partitioned program on the configured machine and
// returns cycle counts, IPC, prediction accuracies, and the §2.3 time
// breakdown. The simulator's final architectural state always equals the
// sequential emulator's.
func Simulate(part *Partition, cfg Config) (*Result, error) { return sim.Run(part, cfg) }

// Observability: cycle-level tracing and metrics (see DESIGN.md §9).
type (
	// Tracer receives cycle-stamped simulator events. Implementations must
	// be fast; Emit is called from the simulator's hot path. A nil Tracer
	// means no events and no overhead.
	Tracer = obs.Tracer
	// TraceEvent is one cycle-stamped simulator event.
	TraceEvent = obs.Event
	// TraceEventKind discriminates TraceEvent (task lifecycle, squash,
	// restart, ARB overflow, misprediction, sync wait, register traffic).
	TraceEventKind = obs.Kind
	// TraceCollector is the canonical in-memory Tracer.
	TraceCollector = obs.Collector
	// Metrics is a registry of named counters, gauges, and histograms with
	// deterministic text and JSON snapshots.
	Metrics = obs.Registry
	// MetricsSnapshot is a point-in-time, deterministically ordered view of
	// a Metrics registry.
	MetricsSnapshot = obs.Snapshot
	// Observer bundles the optional Tracer and Metrics for an observed
	// simulation; the zero value observes nothing.
	Observer = sim.Observer
)

// NewMetrics returns an empty metrics registry. Pass it to SimulateObserved
// (via Observer) or to a grid engine (GridOptions.Metrics) and read it back
// with Snapshot.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// SimulateObserved is Simulate plus observability: events stream to
// o.Tracer and simulator histograms populate o.Metrics as the run executes.
// Observation never changes timing — the returned Result is identical to
// Simulate's for the same inputs.
func SimulateObserved(part *Partition, cfg Config, o Observer) (*Result, error) {
	return sim.RunObserved(part, cfg, o)
}

// WriteChromeTrace writes collected events as Chrome trace-event / Perfetto
// JSON (one track per PU, a slice per dynamic task, instant markers for
// squashes and other point events). Open the output at ui.perfetto.dev.
func WriteChromeTrace(w io.Writer, events []TraceEvent, numPUs int) error {
	return obs.WriteChromeTrace(w, events, numPUs)
}

// Emulate runs the program sequentially (the architectural reference),
// returning the executed instruction count and a memory checksum.
func Emulate(p *Program, limit uint64) (instrs uint64, checksum uint64, err error) {
	m := emu.New(p)
	if err := m.Run(limit); err != nil {
		return 0, 0, err
	}
	return m.Count, m.Mem.Checksum(), nil
}

// Verification.
type (
	// Finding is one rule violation reported by the static checker.
	Finding = verify.Finding
	// Findings is an ordered finding list with severity filters.
	Findings = verify.Findings
	// FindingSeverity grades a finding (info, warn, error).
	FindingSeverity = verify.Severity
)

// Finding severities. Only SevError indicates a partition the hardware
// could mis-execute.
const (
	SevInfo  = verify.SevInfo
	SevWarn  = verify.SevWarn
	SevError = verify.SevError
)

// Verify statically checks a partition against the paper's task invariants
// (connectivity, single entry, target limits, create masks, forward points)
// plus the IR-level rules, returning deterministic findings. A partition
// produced by Select always verifies with zero error findings; see
// DESIGN.md §7 for the rule catalog.
func Verify(part *Partition) Findings { return verify.Partition(part) }

// VerifyProgram runs the IR-layer rules alone over a program.
func VerifyProgram(p *Program) Findings { return verify.Program(p) }

// Workloads.
type (
	// Workload is one of the 18 SPEC95-analog benchmark programs.
	Workload = workloads.Workload
)

// Workloads returns the full benchmark suite (8 integer, 10 floating point).
func Workloads() []Workload { return workloads.All() }

// WorkloadByName returns one benchmark by its SPEC95 name (e.g. "compress")
// or a generated program by its canonical gen: name.
func WorkloadByName(name string) (Workload, error) { return workloads.ByName(name) }

// Property-based workload generation (DESIGN.md §14).
type (
	// GenParams describes one generated program: seed plus shape parameters
	// (function count, blocks, branchiness, loop depth, call density,
	// register-dependence density, memory footprint). Out-of-range values
	// are clamped, so every GenParams denotes a valid program.
	GenParams = gen.Params
)

// GenDefault returns the generator's default parameters (seed 1).
func GenDefault() GenParams { return gen.Default() }

// Generate builds a program from p. Generation is total and deterministic:
// any parameters produce a program that validates, verifies clean, and
// halts, and the same (clamped) parameters produce byte-identical IR on
// every run and machine. The program's name is p's canonical gen: name,
// which WorkloadByName resolves back to the same program.
func Generate(p GenParams) *Program { return gen.Generate(p) }

// GenCorpusParams derives the i'th parameter point of the seed's corpus — a
// deterministic slice through the parameter cube, used by the corpus
// experiment, mslint -corpus, and the fuzz seeds.
func GenCorpusParams(seed int64, i int) GenParams { return gen.CorpusParams(seed, i) }

// ParseGenName parses a canonical gen: workload name back into its
// parameters, rejecting anything but the exact canonical encoding.
func ParseGenName(name string) (GenParams, error) { return gen.ParseName(name) }

// Selection policies: pluggable task-growth strategies (DESIGN.md §14).
type (
	// Policy decides which admissible frontier block joins the growing task;
	// the selector enforces every partition invariant regardless of what the
	// policy prefers. Set Options.Policy to a registered name to use one.
	Policy = core.Policy
	// PolicyTask summarizes the task being grown for a Policy.
	PolicyTask = core.PolicyTask
	// PolicyCandidate is one admissible frontier block with its cost model.
	PolicyCandidate = core.PolicyCandidate
	// PolicyConfig carries the task-size and register-communication budgets.
	PolicyConfig = core.PolicyConfig
)

// RegisterPolicy adds a named policy factory to the global registry; use
// the name in Options.Policy. The built-in zoo (greedy, roundrobin,
// knapsack) is registered by importing this package.
func RegisterPolicy(name string, factory func(PolicyConfig) Policy) {
	core.RegisterPolicy(name, factory)
}

// PolicyNames lists the registered policies, sorted.
func PolicyNames() []string { return core.PolicyNames() }

// Grid execution: the parallel, cache-backed engine behind the experiment
// harness.
type (
	// Grid schedules partition and simulation jobs across a bounded worker
	// pool with single-flight deduplication and an optional on-disk cache.
	Grid = grid.Engine
	// GridOptions configures NewGrid (worker bound, cache directory).
	GridOptions = grid.Options
	// GridJob names one simulation: workload × selection options × machine.
	GridJob = grid.Job
	// GridStats snapshots engine counters (jobs, sims, cache hits, dedups).
	GridStats = grid.Stats
)

// NewGrid returns a grid engine. Workers defaults to GOMAXPROCS; an empty
// CacheDir disables the on-disk result cache.
func NewGrid(opts GridOptions) *Grid { return grid.New(opts) }

// Experiments.
type (
	// Runner caches partitions and simulations across experiments.
	Runner = experiment.Runner
	// Variant names one bar of Figure 5.
	Variant = experiment.Variant
	// Fig5Cell is one bar of Figure 5.
	Fig5Cell = experiment.Fig5Cell
	// T1Row is one row of Table 1.
	T1Row = experiment.T1Row
	// SimConfig selects one machine point for experiments.
	SimConfig = experiment.SimConfig
)

// NewRunner returns an experiment runner on a fresh default grid engine.
func NewRunner() *Runner { return experiment.NewRunner() }

// NewRunnerOn returns an experiment runner sharing an existing grid engine
// (and therefore its worker pool, memo, and cache).
func NewRunnerOn(g *Grid) *Runner { return experiment.NewRunnerOn(g) }

// Figure5 regenerates the paper's Figure 5 grid (nil arguments select the
// paper's full configuration: 4 and 8 PUs, every workload).
func Figure5(r *Runner, pus []int, names []string) ([]Fig5Cell, error) {
	return experiment.Figure5(r, pus, names)
}

// Table1 regenerates the paper's Table 1 on 8 out-of-order PUs.
func Table1(r *Runner, names []string) ([]T1Row, error) { return experiment.Table1(r, names) }

// FormatFigure5 and FormatTable1 render experiment output in the paper's
// layout.
func FormatFigure5(cells []Fig5Cell) string { return experiment.FormatFigure5(cells) }

// FormatTable1 renders Table 1 rows.
func FormatTable1(rows []T1Row) string { return experiment.FormatTable1(rows) }

// HTTP serving: the simulation service behind cmd/mssrv (DESIGN.md §10).
type (
	// Server is the HTTP simulation service: POST /v1/partition, /v1/simulate,
	// /v1/experiment (SSE progress), GET /healthz, GET /metrics. All requests
	// execute on one shared Grid, so identical concurrent requests coalesce
	// into a single simulation; a bounded admission gate sheds excess load
	// with 429, and Shutdown drains in-flight requests gracefully.
	Server = serve.Server
	// ServerConfig configures NewServer. Engine is required; every other
	// field (admission bound, request timeout, body cap, logger) defaults.
	ServerConfig = serve.Config
)

// NewServer returns an HTTP simulation service on cfg.Engine. Serve it with
// Server.Serve and stop it with Server.Shutdown, or mount Server.Handler in
// an existing mux.
func NewServer(cfg ServerConfig) *Server { return serve.New(cfg) }

// Distributed execution: multi-process fan-out over the grid (DESIGN.md §12).
type (
	// GridCache is the result-cache seam the engine loads and stores
	// artifacts through; DiskCache, DistTiered, and DistRemoteCache all
	// implement it.
	GridCache = grid.Cache
	// DistScheduler is the leader-side work-stealing shard scheduler. Set
	// it as GridOptions.Dispatcher and the engine offers every job to the
	// fleet instead of computing inline; Close fails pending jobs open so
	// the engine falls back to local compute.
	DistScheduler = dist.Scheduler
	// DistSchedOptions configures NewDistScheduler (shards, lease).
	DistSchedOptions = dist.SchedOptions
	// DistLeader serves the scheduler and a shared cache over HTTP
	// (/v1/dist/register|pull|report, /v1/cache/{key}, /healthz).
	DistLeader = dist.Leader
	// DistLeaderOptions configures NewDistLeader (cache, poll wait, logger).
	DistLeaderOptions = dist.LeaderOptions
	// DistWorker pulls jobs from a leader, executes them on its own grid
	// engine, and publishes results back through its cache tiers.
	DistWorker = dist.Worker
	// DistWorkerOptions configures NewDistWorker. Leader and Engine are
	// required; Concurrency defaults to the engine's worker count.
	DistWorkerOptions = dist.WorkerOptions
	// DistCacheConfig selects cache tiers for NewDistCache
	// (LRU size, disk directory, remote peer URL).
	DistCacheConfig = dist.CacheConfig
	// DistTiered stacks cache tiers fastest-first with promotion on hit
	// and write-through on store.
	DistTiered = dist.Tiered
	// DistRemoteCache is the HTTP cache tier: fail-open loads with bounded
	// retries, detached stores, and a Ping health probe.
	DistRemoteCache = dist.RemoteCache
)

// NewDistScheduler returns a work-stealing shard scheduler.
func NewDistScheduler(opts DistSchedOptions) *DistScheduler { return dist.NewScheduler(opts) }

// NewDistLeader returns the HTTP surface for a scheduler; mount its
// Handler on a listener the workers can reach.
func NewDistLeader(s *DistScheduler, opts DistLeaderOptions) *DistLeader {
	return dist.NewLeader(s, opts)
}

// NewDistWorker returns a worker bound to a leader URL. Run blocks until
// the context is canceled, the leader closes the run, or the leader stays
// unreachable past the failure budget.
func NewDistWorker(opts DistWorkerOptions) (*DistWorker, error) { return dist.NewWorker(opts) }

// NewDistCache composes cache tiers from cfg. Both returns are nil when no
// tier is configured; the remote tier is also returned separately so
// callers can report its hit/miss/error counters.
func NewDistCache(cfg DistCacheConfig) (*DistTiered, *DistRemoteCache) {
	return dist.BuildCache(cfg)
}

// Request tracing: wall-clock spans across serve, grid, and dist hops, with
// an in-process flight recorder and a /debug introspection surface
// (DESIGN.md §13). This is distinct from the cycle-level Tracer above: spans
// time the distributed machinery, not the simulated machine.
type (
	// SpanTracer mints spans, stitches cross-process fragments together,
	// and retains finished traces in a flight recorder. A nil *SpanTracer
	// is fully inert, so tracing is strictly pay-for-use.
	SpanTracer = span.Tracer
	// SpanTracerOptions configures NewSpanTracer (process name, recorder
	// retention, per-trace span cap, optional Metrics registry for
	// ms_span_duration_seconds histograms).
	SpanTracerOptions = span.Options
	// Span is one timed operation within a trace. All methods are
	// nil-receiver safe; End(err) records the outcome.
	Span = span.Span
	// SpanContext is the propagated (trace ID, span ID) pair — the value
	// carried on the X-Ms-Trace header and the dist wire protocol.
	SpanContext = span.SpanContext
	// SpanData is one finished span as stored by the recorder.
	SpanData = span.SpanData
	// SpanTrace is a finished trace: root, spans, and drop count.
	SpanTrace = span.TraceData
	// SpanFilter selects recorder traces by name, status, or duration.
	SpanFilter = span.Filter
)

// SpanHeader is the HTTP header carrying a SpanContext between processes.
const SpanHeader = span.Header

// NewSpanTracer returns a tracer with a flight recorder sized by o. Pass it
// to ServerConfig.Tracer, DistSchedOptions.Tracer, DistLeaderOptions.Tracer,
// and DistWorkerOptions.Tracer to trace every hop of a distributed sweep.
func NewSpanTracer(o SpanTracerOptions) *SpanTracer { return span.New(o) }

// StartSpan opens a child span under the span already in ctx; with no
// traced ancestor it is free and returns (ctx, nil).
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return span.Start(ctx, name)
}

// RegisterTraceDebug mounts the tracer's introspection surface on mux:
// GET /debug/traces (list + filter), /debug/traces/{id} (tree, or Chrome
// trace-event JSON with ?format=chrome), and /debug/requests (in-flight).
func RegisterTraceDebug(mux *http.ServeMux, t *SpanTracer) { span.RegisterDebug(mux, t) }

// WriteSpanTrace writes one finished trace as Chrome trace-event JSON (one
// track per process). Open the output at ui.perfetto.dev.
func WriteSpanTrace(w io.Writer, td *SpanTrace) error { return span.WriteChrome(w, td) }

// Durable async jobs: long sweeps as journaled, restartable work
// (DESIGN.md §15). A JobsManager executes content-addressed job specs on a
// bounded runner pool over the shared Grid, persists lifecycle records to a
// disk journal so queued and running work resumes after a crash, and
// schedules tenants by weighted fair queueing. ServerConfig.Jobs mounts the
// manager as POST /v1/jobs (+ polling, SSE events, cancel); JobsLimiter and
// JobsRing add per-tenant submission limits and consistent-hash routing
// across replicas.
type (
	// JobsManager owns the queue, the runner pool, the journal, and the
	// per-job event streams. Start it with a lifecycle context and Close it
	// after the HTTP drain so in-flight jobs requeue cleanly.
	JobsManager = jobs.Manager
	// JobsOptions configures NewJobsManager. Executors is required; Dir
	// enables the durability journal (convention: <cache-dir>/jobs).
	JobsOptions = jobs.Options
	// JobSpec is the content-addressed unit of async work: a kind plus the
	// canonicalized request payload. JobIDFor(spec) is its identity.
	JobSpec = jobs.Spec
	// JobRecord is one job's full lifecycle state as kept by the manager
	// and the journal.
	JobRecord = jobs.Record
	// JobEvent is one entry in a job's append-only event stream (the SSE
	// feed); Seq is contiguous from 1 per job.
	JobEvent = jobs.Event
	// JobExecutor runs one job kind; serve wires partition, simulate,
	// generate, and experiment executors over the engine.
	JobExecutor = jobs.Executor
	// JobsLimiter is the per-tenant token-bucket submission limiter behind
	// ServerConfig.JobLimiter.
	JobsLimiter = jobs.Limiter
	// JobsRing is the consistent-hash ring that assigns each job ID an
	// owning replica; non-owners answer with a 307 redirect.
	JobsRing = jobs.Ring
	// JobsStats snapshots manager counters for /healthz (queued, running,
	// terminal counts, oldest queued age).
	JobsStats = jobs.Stats
)

// NewJobsManager returns a job manager. Call Start before submitting and
// Close to drain; both are safe around an HTTP server's own lifecycle.
func NewJobsManager(opts JobsOptions) (*JobsManager, error) { return jobs.NewManager(opts) }

// NewJobsLimiter returns a token-bucket limiter granting rate submissions
// per second per tenant with the given burst (0 = rate, min 1).
func NewJobsLimiter(rate, burst float64) *JobsLimiter { return jobs.NewLimiter(rate, burst) }

// NewJobsRing builds the consistent-hash ring from this replica's base URL
// and the full peer list (canonicalize both with the same rules on every
// replica — cmd/mssrv uses dist.NormalizePeers). A nil ring owns everything.
func NewJobsRing(self string, peers []string) *JobsRing { return jobs.NewRing(self, peers) }

// JobIDFor returns the job's content-addressed identity: submitting two
// specs with equal IDs yields one execution and one shared record.
func JobIDFor(spec JobSpec) string { return jobs.IDFor(spec) }

// JobExecutors returns the standard executor set over eng — the async
// counterparts of the partition, simulate, generate, and experiment
// endpoints — emitting progress events every progressInterval.
func JobExecutors(eng *Grid, progressInterval time.Duration) map[string]JobExecutor {
	return serve.Executors(eng, progressInterval)
}

// JobCost estimates a spec's relative schedule cost for the fair queue
// (experiments outweigh single simulations). Pass it as JobsOptions.Cost.
func JobCost(spec JobSpec) float64 { return serve.JobCost(spec) }
