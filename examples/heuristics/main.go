// Heuristics: reproduce the paper's core comparison on one benchmark —
// basic-block vs control-flow vs data-dependence tasks, with and without the
// task-size heuristic, on in-order and out-of-order PUs.
package main

import (
	"flag"
	"fmt"
	"log"

	"multiscalar"
)

func main() {
	name := flag.String("workload", "compress", "benchmark to study")
	pus := flag.Int("pus", 4, "processing units")
	flag.Parse()

	w, err := multiscalar.WorkloadByName(*name)
	if err != nil {
		log.Fatal(err)
	}
	type variant struct {
		label    string
		h        multiscalar.Heuristic
		taskSize bool
	}
	variants := []variant{
		{"basic block", multiscalar.BasicBlock, false},
		{"control flow", multiscalar.ControlFlow, false},
		{"data dependence", multiscalar.DataDependence, false},
		{"dd + task size", multiscalar.DataDependence, true},
	}
	fmt.Printf("%s on %d PUs (paper machine, §4.2)\n\n", w.Name, *pus)
	fmt.Printf("%-16s %10s %10s %10s %10s %10s\n",
		"tasks", "ooo IPC", "ino IPC", "size", "targets", "taskpred")
	var baseline float64
	for _, v := range variants {
		part, err := multiscalar.Select(w.Build(), multiscalar.Options{
			Heuristic: v.h, TaskSize: v.taskSize,
		})
		if err != nil {
			log.Fatal(err)
		}
		cfg := multiscalar.DefaultConfig(*pus)
		ooo, err := multiscalar.Simulate(part, cfg)
		if err != nil {
			log.Fatal(err)
		}
		cfg.InOrder = true
		ino, err := multiscalar.Simulate(part, cfg)
		if err != nil {
			log.Fatal(err)
		}
		avgTargets := 0.0
		for _, t := range part.Tasks {
			avgTargets += float64(t.NumTargets())
		}
		avgTargets /= float64(len(part.Tasks))
		fmt.Printf("%-16s %10.3f %10.3f %10.1f %10.1f %9.1f%%\n",
			v.label, ooo.IPC, ino.IPC, ooo.AvgTaskSize, avgTargets,
			100*ooo.TaskPredAccuracy)
		if v.h == multiscalar.BasicBlock {
			baseline = ooo.IPC
		} else if baseline > 0 {
			fmt.Printf("%-16s %+9.1f%% over basic-block tasks (out-of-order)\n",
				"", 100*(ooo.IPC/baseline-1))
		}
	}
}
