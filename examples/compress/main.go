// Compress: a deep dive into the paper's motivating workload. Shows the
// static tasks the data-dependence heuristic selects for the LZW hash loop,
// the dynamic task stream (sizes, exit targets), and how the ARB +
// synchronization table handle the hash-table memory dependences.
package main

import (
	"fmt"
	"log"
	"sort"

	"multiscalar"
)

func main() {
	w, err := multiscalar.WorkloadByName("compress")
	if err != nil {
		log.Fatal(err)
	}
	part, err := multiscalar.Select(w.Build(), multiscalar.Options{
		Heuristic: multiscalar.DataDependence,
		TaskSize:  true, // compress is one of the two benchmarks that respond
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("compress under the data-dependence + task-size heuristics: %d static tasks\n\n", len(part.Tasks))
	for _, t := range part.Tasks {
		blocks := make([]int, 0, len(t.Blocks))
		for b := range t.Blocks {
			blocks = append(blocks, int(b))
		}
		sort.Ints(blocks)
		fmt.Printf("  task %d: entry b%-3d blocks %v targets %v\n", t.ID, t.Entry, blocks, t.Targets)
	}

	// Walk the dynamic task stream: how big are instances, where do they exit?
	instances := map[int]int{}
	sizes := map[int]int{}
	total := 0
	err = multiscalar.WalkTasks(part, 10_000_000, func(te multiscalar.TaskExec) {
		instances[te.Task.ID]++
		sizes[te.Task.ID] += te.DynInstrs
		total += te.DynInstrs
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndynamic stream: %d instructions in task instances\n", total)
	var ids []int
	for id := range instances {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		fmt.Printf("  task %d: %6d instances, avg %5.1f instrs\n",
			id, instances[id], float64(sizes[id])/float64(instances[id]))
	}

	// The hash table makes neighbor iterations collide through memory: watch
	// the ARB and the synchronization table tame the violations.
	fmt.Println("\nmemory dependence speculation on 4 out-of-order PUs:")
	for _, syncOn := range []bool{false, true} {
		cfg := multiscalar.DefaultConfig(4)
		cfg.SyncTable = syncOn
		res, err := multiscalar.Simulate(part, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  sync table %-3v: IPC %.3f, %d violations, %d restarts, %d sync waits\n",
			syncOn, res.IPC, res.Violations, res.Restarts, res.SyncWaits)
	}
}
