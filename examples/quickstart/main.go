// Quickstart: build a small program with the public API, partition it with
// the paper's control-flow heuristic, and compare a 1-PU machine against a
// 4-PU Multiscalar.
package main

import (
	"fmt"
	"log"

	"multiscalar"
)

func main() {
	prog := buildProgram()

	// Sanity: run it on the sequential reference emulator first.
	instrs, checksum, err := multiscalar.Emulate(prog, 1_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program %q: %d dynamic instructions, memory checksum %#x\n\n",
		prog.Name, instrs, checksum)

	// Partition with the control-flow heuristic (the paper's §3.3).
	part, err := multiscalar.Select(prog, multiscalar.Options{
		Heuristic: multiscalar.ControlFlow,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("control-flow heuristic produced %d static tasks\n\n", len(part.Tasks))

	// Simulate on 1 and 4 PUs with the paper's machine parameters.
	for _, pus := range []int{1, 4} {
		res, err := multiscalar.Simulate(part, multiscalar.DefaultConfig(pus))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d PU(s): %6d cycles, IPC %.3f, task prediction %.1f%%\n",
			pus, res.Cycles, res.IPC, 100*res.TaskPredAccuracy)
		if res.FinalChecksum != checksum {
			log.Fatalf("simulator diverged from the sequential reference!")
		}
	}
	fmt.Println("\narchitectural state matches the sequential emulator on every run")
}

// buildProgram constructs: for i in 0..255 { buf[i] = 3*i; sum += buf[i] },
// then stores the sum.
func buildProgram() *multiscalar.Program {
	r := multiscalar.R
	b := multiscalar.NewBuilder("quickstart")
	buf := b.Zeros(256)
	out := b.Zeros(1)
	f := b.Func("main")
	f.Block("entry").
		MovI(r(3), 0).
		MovI(r(4), 0).
		MovI(r(8), int64(buf)).
		MovI(r(9), int64(out)).
		Goto("head")
	f.Block("head").
		SltI(r(5), r(3), 256).
		Br(r(5), "body", "exit")
	f.Block("body").
		MulI(r(6), r(3), 3).
		ShlI(r(7), r(3), 3).
		Add(r(7), r(7), r(8)).
		Store(r(6), r(7), 0).
		Add(r(4), r(4), r(6)).
		AddI(r(3), r(3), 1).
		Goto("head")
	f.Block("exit").
		Store(r(4), r(9), 0).
		Halt()
	f.End()
	return b.Build()
}
