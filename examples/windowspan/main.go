// Windowspan: reproduce the paper's §4.3.4 argument — the window span
// (Σ TaskSize·Predⁱ over the PUs) of heuristic tasks dwarfs both basic-block
// tasks and a superscalar's branch-prediction-limited window, and grows with
// the number of PUs.
package main

import (
	"fmt"
	"log"

	"multiscalar"
)

func main() {
	names := []string{"go", "compress", "ijpeg", "tomcatv", "swim", "fpppp"}
	fmt.Println("window span: the dynamic instructions simultaneously in flight")
	fmt.Println("(Table 1's rightmost column; 8 out-of-order PUs)")
	fmt.Println()
	fmt.Printf("%-10s %18s %18s %10s\n", "benchmark", "basic block", "data dependence", "ratio")
	for _, name := range names {
		bbSpan := span(name, multiscalar.BasicBlock, 8)
		ddSpan := span(name, multiscalar.DataDependence, 8)
		fmt.Printf("%-10s %18.0f %18.0f %9.1fx\n", name, bbSpan, ddSpan, ddSpan/bbSpan)
	}

	fmt.Println("\nscaling with PU count (tomcatv, data dependence tasks):")
	for _, pus := range []int{2, 4, 8, 16} {
		fmt.Printf("  %2d PUs: window span %6.0f instructions\n",
			pus, span("tomcatv", multiscalar.DataDependence, pus))
	}
}

func span(name string, h multiscalar.Heuristic, pus int) float64 {
	w, err := multiscalar.WorkloadByName(name)
	if err != nil {
		log.Fatal(err)
	}
	part, err := multiscalar.Select(w.Build(), multiscalar.Options{Heuristic: h})
	if err != nil {
		log.Fatal(err)
	}
	res, err := multiscalar.Simulate(part, multiscalar.DefaultConfig(pus))
	if err != nil {
		log.Fatal(err)
	}
	return res.WindowSpan
}
